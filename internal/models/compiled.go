package models

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Compiled is a model bound to an immutable execution plan (fused
// kernels, static buffer assignment) plus a private buffer state: the
// compile-once/run-many inference surface. Run is not safe for
// concurrent use — it owns one state; RunBatch shards feeds across
// workers with per-worker states over the shared plan.
type Compiled struct {
	// Model is the compiled model (shared, not copied).
	Model *Model
	// Plan is the immutable execution plan fetching Model.Output. It is
	// safe to share across goroutines via graph.Plan.NewState.
	Plan *graph.Plan

	state *graph.PlanState
}

// Compile builds a fused execution plan for the model's inference path
// (input placeholder through Model.Output). Protection operators
// (RangerClip) fold into their producers' loops, so a protected model
// runs in nearly the same time as an unprotected one.
func (m *Model) Compile() (*Compiled, error) {
	return m.CompileWith(graph.CompileOptions{})
}

// CompileWith is Compile with explicit options (observation points,
// fusion off for measurement).
func (m *Model) CompileWith(opts graph.CompileOptions) (*Compiled, error) {
	plan, err := graph.CompileWith(m.Graph, opts, m.Output)
	if err != nil {
		return nil, fmt.Errorf("models: compile %s: %w", m.Name, err)
	}
	return &Compiled{Model: m, Plan: plan, state: plan.NewState()}, nil
}

// Run evaluates the compiled model on one feed set and returns a copy
// of the output tensor, safe to retain. Feeds are validated against the
// placeholder-declared shapes before any kernel runs.
func (c *Compiled) Run(feeds graph.Feeds) (*tensor.Tensor, error) {
	outs, err := c.Plan.Run(c.state, feeds)
	if err != nil {
		return nil, err
	}
	return outs[0].Clone(), nil
}

// RunBatch evaluates the compiled model over independent feed sets,
// sharded across workers (0 means the process default) with runs of up
// to graph.DefaultBatchLanes same-shaped single-sample feeds stacked
// into one lane-batched pass. out[i] is the model output for feeds[i];
// results are identical at every worker count and lane width.
func (c *Compiled) RunBatch(feeds []graph.Feeds, workers int) ([]*tensor.Tensor, error) {
	batched, err := graph.RunPlanBatch(c.Plan, feeds, workers, graph.DefaultBatchLanes)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(feeds))
	for i, res := range batched {
		outs[i] = res[0]
	}
	return outs, nil
}
