package models

import (
	"fmt"
	"math"

	"ranger/internal/graph"
	"ranger/internal/ops"
)

// DatasetName is attached to each model so the trainer and experiment
// harness can pair models with their datasets.
type buildFunc func() *Model

// registry maps model names to constructors. The "-tanh" variants retrain
// with Tanh activations for the Hong et al. comparison (Fig. 8).
var registry = map[string]buildFunc{
	"lenet":        func() *Model { return LeNet(ActRelu) },
	"lenet-tanh":   func() *Model { return LeNet(ActTanh) },
	"alexnet":      func() *Model { return AlexNet(ActRelu) },
	"alexnet-tanh": func() *Model { return AlexNet(ActTanh) },
	"vgg11":        func() *Model { return VGG11(ActRelu) },
	"vgg11-tanh":   func() *Model { return VGG11(ActTanh) },
	"vgg16":        func() *Model { return VGG16(ActRelu) },
	"resnet18":     func() *Model { return ResNet18(ActRelu) },
	"squeezenet":   func() *Model { return SqueezeNet(ActRelu) },
	"dave":         func() *Model { return Dave(ActRelu, false) },
	"dave-tanh":    func() *Model { return Dave(ActTanh, false) },
	"dave-degrees": func() *Model { return Dave(ActRelu, true) },
	"comma":        func() *Model { return Comma(ActElu) },
	"comma-tanh":   func() *Model { return Comma(ActTanh) },
}

// Build constructs a model by registry name.
func Build(name string) (*Model, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
	return f(), nil
}

// Names returns the canonical eight paper models in evaluation order.
func Names() []string {
	return []string{"lenet", "alexnet", "vgg11", "vgg16", "resnet18", "squeezenet", "dave", "comma"}
}

// ClassifierNames returns the six classifier models of Fig. 6.
func ClassifierNames() []string {
	return []string{"lenet", "alexnet", "vgg11", "vgg16", "resnet18", "squeezenet"}
}

// LeNet is the classic LeNet-5 on the digits (MNIST stand-in) dataset.
// Full-size channels (6, 16) are kept; this model is already laptop-scale.
func LeNet(act Activation) *Model {
	b := newBuilder(11, act)
	b.input(28, 28, 1)
	b.conv(6, 5, 5, 1, 2)
	b.activation()
	b.maxPool(2, 2)
	b.conv(16, 5, 5, 1, 0)
	b.activation()
	b.maxPool(2, 2)
	b.flatten()
	b.dense(120)
	b.activation()
	b.dense(84)
	b.activation()
	last := b.dense(10)
	m := b.finishClassifier(nameWithAct("lenet", act), 10, []int{28, 28, 1}, fcNodeNames(last))
	m.Dataset = "digits"
	return m
}

// AlexNet is a 5-conv/3-fc AlexNet-family model on the objects10
// (CIFAR-10 stand-in) dataset; channels scaled ~1/4 of the CIFAR variant.
func AlexNet(act Activation) *Model {
	b := newBuilder(22, act)
	b.input(32, 32, 3)
	b.conv(16, 3, 3, 1, 1)
	b.activation()
	b.maxPool(2, 2)
	b.conv(24, 3, 3, 1, 1)
	b.activation()
	b.maxPool(2, 2)
	b.conv(32, 3, 3, 1, 1)
	b.activation()
	b.conv(32, 3, 3, 1, 1)
	b.activation()
	b.conv(24, 3, 3, 1, 1)
	b.activation()
	b.maxPool(2, 2)
	b.flatten()
	b.dense(128)
	b.activation()
	b.dense(64)
	b.activation()
	last := b.dense(10)
	m := b.finishClassifier(nameWithAct("alexnet", act), 10, []int{32, 32, 3}, fcNodeNames(last))
	m.Dataset = "objects10"
	return m
}

// VGG11 is configuration A of VGGNet on the signs (GTSRB stand-in)
// dataset, channels scaled 1/8 (8..64 instead of 64..512).
func VGG11(act Activation) *Model {
	b := newBuilder(33, act)
	b.input(32, 32, 3)
	for _, c := range []int{8, -1, 16, -1, 32, 32, -1, 64, 64, -1, 64, 64, -1} {
		if c == -1 {
			b.maxPool(2, 2)
			continue
		}
		b.conv(c, 3, 3, 1, 1)
		b.activation()
	}
	b.flatten()
	b.dense(64)
	b.activation()
	b.dense(64)
	b.activation()
	last := b.dense(8)
	m := b.finishClassifier(nameWithAct("vgg11", act), 8, []int{32, 32, 3}, fcNodeNames(last))
	m.Dataset = "signs"
	return m
}

// VGG16 is configuration D of VGGNet on the imnet (ImageNet stand-in)
// dataset: 13 conv+ACT layers exactly as the paper notes ("13 ACT layers
// in total" under Fig. 4), channels scaled 1/8.
func VGG16(act Activation) *Model {
	b := newBuilder(44, act)
	b.input(64, 64, 3)
	for _, c := range []int{8, 8, -1, 16, 16, -1, 32, 32, 32, -1, 64, 64, 64, -1, 64, 64, 64, -1} {
		if c == -1 {
			b.maxPool(2, 2)
			continue
		}
		b.conv(c, 3, 3, 1, 1)
		b.activation()
	}
	b.flatten()
	b.dense(128)
	b.activation()
	b.dense(128)
	b.activation()
	last := b.dense(20)
	m := b.finishClassifier(nameWithAct("vgg16", act), 20, []int{64, 64, 3}, fcNodeNames(last))
	m.Dataset = "imnet"
	return m
}

// ResNet18 is the 4-stage, 2-block-per-stage residual network on the
// imnet dataset, channels scaled 1/8 (8..64). Identity shortcuts use Add;
// downsampling shortcuts use a 1x1 strided conv projection.
func ResNet18(act Activation) *Model {
	b := newBuilder(55, act)
	b.input(64, 64, 3)
	b.conv(8, 3, 3, 1, 1)
	b.activation()
	channels := []int{8, 16, 32, 64}
	for stage, c := range channels {
		for block := 0; block < 2; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			residualBlock(b, c, stride)
		}
	}
	b.avgPoolGlobal()
	b.flatten()
	last := b.dense(20)
	m := b.finishClassifier(nameWithAct("resnet18", act), 20, []int{64, 64, 3}, fcNodeNames(last))
	m.Dataset = "imnet"
	return m
}

// residualBlock appends a basic ResNet block: conv-act-conv plus a skip
// connection joined by Add, followed by an activation.
func residualBlock(b *builder, outC, stride int) {
	skip := b.last
	skipShape := append([]int{}, b.cur...)
	b.conv(outC, 3, 3, stride, 1)
	b.activation()
	b.conv(outC, 3, 3, 1, 1)
	main := b.last
	mainShape := append([]int{}, b.cur...)
	if skipShape[0] != mainShape[0] || skipShape[2] != mainShape[2] {
		// Projection shortcut: 1x1 conv with the block's stride.
		b.last = skip
		b.cur = skipShape
		b.conv(outC, 1, 1, stride, 0)
		skip = b.last
	}
	b.last = b.g.MustAdd(b.name("resadd"), ops.AddOp{}, main, skip)
	b.cur = mainShape
	b.activation()
}

// SqueezeNet is the fire-module architecture on the imnet dataset,
// scaled ~1/8. Its Concat joins two ACT outputs, exercising Algorithm 1's
// Concatenate rule (bound = min/max of the two preceding ACT bounds).
func SqueezeNet(act Activation) *Model {
	b := newBuilder(66, act)
	b.input(64, 64, 3)
	b.conv(16, 3, 3, 2, 1)
	b.activation()
	b.maxPool(3, 2)
	fireModule(b, 4, 8)
	fireModule(b, 4, 8)
	b.maxPool(3, 2)
	fireModule(b, 8, 16)
	fireModule(b, 8, 16)
	b.maxPool(3, 2)
	fireModule(b, 12, 24)
	// Classifier head: 1x1 conv to classes, ACT, global average pool.
	head := b.conv(20, 1, 1, 1, 0) // returns the head's BiasAdd node
	headAct := b.activation()
	gap := b.avgPoolGlobal()
	flat := b.flatten()
	exclude := []string{head.Name(), headAct.Name(), gap.Name(), flat.Name()}
	for _, in := range head.Inputs() {
		if in.OpType() == ops.TypeConv2D {
			exclude = append(exclude, in.Name())
		}
	}
	m := b.finishClassifier(nameWithAct("squeezenet", act), 20, []int{64, 64, 3}, exclude)
	m.Dataset = "imnet"
	return m
}

// fireModule appends a squeeze 1x1 conv + ACT followed by parallel
// expand-1x1 and expand-3x3 convs (+ACT each) joined by Concat.
func fireModule(b *builder, squeezeC, expandC int) {
	b.conv(squeezeC, 1, 1, 1, 0)
	b.activation()
	sq := b.last
	sqShape := append([]int{}, b.cur...)

	b.conv(expandC, 1, 1, 1, 0)
	e1 := b.activation()
	e1Shape := append([]int{}, b.cur...)

	b.last = sq
	b.cur = sqShape
	b.conv(expandC, 3, 3, 1, 1)
	e3 := b.activation()

	b.last = b.g.MustAdd(b.name("concat"), ops.ConcatOp{}, e1, e3)
	b.cur = []int{e1Shape[0], e1Shape[1], 2 * expandC}
}

// Dave is the Nvidia Dave-2 steering model on the driving dataset,
// channels scaled ~1/4. The head reproduces the SullyChen TensorFlow
// implementation the paper uses: y = 2·atan(fc), emitting radians. The
// degrees variant (the paper's retrained model, §VI-A) scales the atan
// output to degrees instead, giving the output a larger dynamic range.
func Dave(act Activation, degrees bool) *Model {
	seed := int64(77)
	if degrees {
		seed = 78
	}
	b := newBuilder(seed, act)
	b.input(66, 200, 3)
	b.conv(6, 5, 5, 2, 0)
	b.activation()
	b.conv(9, 5, 5, 2, 0)
	b.activation()
	b.conv(12, 5, 5, 2, 0)
	b.activation()
	b.conv(16, 3, 3, 1, 0)
	b.activation()
	b.conv(16, 3, 3, 1, 0)
	b.activation()
	b.flatten()
	b.dense(100)
	b.activation()
	b.dense(50)
	b.activation()
	b.dense(10)
	b.activation()
	lastFC := b.dense(1)
	atan := b.g.MustAdd("atan_out", ops.Atan(), b.last)
	factor := float32(2)
	if degrees {
		factor = float32(2 * 180 / math.Pi)
	}
	out := b.g.MustAdd("steering", &ops.ScaleOp{Factor: factor}, atan)
	b.last = out
	name := nameWithAct("dave", act)
	dataset := "driving-rad"
	if degrees {
		name = "dave-degrees"
		dataset = "driving-deg"
	}
	exclude := append(fcNodeNames(lastFC), "atan_out", "steering")
	m := b.finishRegressor(name, []int{66, 200, 3}, degrees, exclude)
	m.Dataset = dataset
	return m
}

// Comma is the Comma.ai research steering model on the driving dataset,
// channels scaled ~1/2. It keeps the original's ELU activations and
// linear head, emitting the steering angle directly in degrees — the
// larger output dynamic range the paper credits for its resilience.
func Comma(act Activation) *Model {
	b := newBuilder(88, act)
	b.input(66, 200, 3)
	b.conv(8, 8, 8, 4, 0)
	b.activation()
	b.conv(12, 5, 5, 2, 0)
	b.activation()
	b.conv(16, 5, 5, 2, 0)
	b.activation()
	b.flatten()
	b.dense(64)
	b.activation()
	lastFC := b.dense(1)
	name := "comma"
	if act != ActElu {
		name = nameWithAct("comma", act)
	}
	m := b.finishRegressor(name, []int{66, 200, 3}, true, fcNodeNames(lastFC))
	m.Dataset = "driving-deg"
	return m
}

func nameWithAct(base string, act Activation) string {
	if act == ActRelu {
		return base
	}
	return base + "-" + string(act)
}

// fcNodeNames returns the node names making up a dense layer (the BiasAdd
// node returned by builder.dense plus its MatMul input), which the paper
// excludes from the fault space for the final layer.
func fcNodeNames(biasNode *graph.Node) []string {
	names := []string{biasNode.Name()}
	for _, in := range biasNode.Inputs() {
		if in.OpType() == ops.TypeDense {
			names = append(names, in.Name())
		}
	}
	return names
}
