package models

import (
	"fmt"

	"ranger/internal/graph"
	"ranger/internal/tensor"
)

// Quantized is a model bound to an int8 execution plan plus a private
// buffer state: the deployed post-training-quantized inference surface.
// Feeds stay float32 — the plan quantizes them at the input boundary and
// dequantizes the fetch on the way out. Run is not safe for concurrent
// use; RunBatch shards feeds across workers with per-worker states over
// the shared plan.
type Quantized struct {
	// Model is the quantized model (shared, not copied).
	Model *Model
	// Plan is the immutable int8 plan fetching Model.Output. It is safe
	// to share across goroutines via graph.QPlan.NewState.
	Plan *graph.QPlan
	// Calibration holds the value ranges the plan was quantized with.
	Calibration graph.Calibration

	state *graph.QPlanState
}

// Quantize compiles the model's fused inference plan and rewrites it to
// int8 kernels using the calibrated value ranges (core.CalibrateModel).
// A Ranger-protected model quantizes with its restriction bounds folded
// into the kernels' saturating clamps, so protection is free in the
// quantized domain.
func (m *Model) Quantize(calib graph.Calibration) (*Quantized, error) {
	return m.QuantizeWith(graph.CompileOptions{}, calib)
}

// QuantizeWith is Quantize with explicit compile options (observation
// points keep nodes materialized for int8 fault injection).
func (m *Model) QuantizeWith(opts graph.CompileOptions, calib graph.Calibration) (*Quantized, error) {
	plan, err := graph.CompileWith(m.Graph, opts, m.Output)
	if err != nil {
		return nil, fmt.Errorf("models: compile %s: %w", m.Name, err)
	}
	qp, err := graph.Quantize(plan, calib)
	if err != nil {
		return nil, fmt.Errorf("models: quantize %s: %w", m.Name, err)
	}
	return &Quantized{Model: m, Plan: qp, Calibration: calib, state: qp.NewState()}, nil
}

// Run evaluates the quantized model on one feed set and returns the
// dequantized output tensor (freshly allocated, safe to retain).
func (q *Quantized) Run(feeds graph.Feeds) (*tensor.Tensor, error) {
	outs, err := q.Plan.Run(q.state, feeds)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunBatch evaluates the quantized model over independent feed sets,
// sharded across workers (0 means the process default) with runs of up
// to graph.DefaultBatchLanes same-shaped single-sample feeds stacked
// into one lane-batched int8 pass. out[i] is the model output for
// feeds[i]; integer arithmetic makes results identical at every worker
// count and lane width.
func (q *Quantized) RunBatch(feeds []graph.Feeds, workers int) ([]*tensor.Tensor, error) {
	batched, err := graph.RunQPlanBatch(q.Plan, feeds, workers, graph.DefaultBatchLanes)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(feeds))
	for i, res := range batched {
		outs[i] = res[0]
	}
	return outs, nil
}
