package train

import (
	"os"
	"path/filepath"
	"testing"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
)

func TestTrainValidation(t *testing.T) {
	m, _ := models.Build("lenet")
	ds := data.NewDigits()
	if _, err := Train(m, ds, Config{Epochs: 0, BatchSize: 4}); err == nil {
		t.Fatal("want epochs error")
	}
	if _, err := Train(m, ds, Config{Epochs: 1, BatchSize: 0}); err == nil {
		t.Fatal("want batch error")
	}
}

func TestTrainReducesLossAndLearns(t *testing.T) {
	m, _ := models.Build("lenet")
	ds := data.NewDigits()
	before, err := TopKAccuracy(m, ds, data.Val, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := Train(m, ds, Config{Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || loss > 2.5 {
		t.Fatalf("final loss = %v", loss)
	}
	after, err := TopKAccuracy(m, ds, data.Val, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after < before+0.3 || after < 0.6 {
		t.Fatalf("accuracy %v -> %v; training is not learning", before, after)
	}
}

func TestTrainAdamLearns(t *testing.T) {
	m, _ := models.Build("lenet")
	ds := data.NewDigits()
	if _, err := Train(m, ds, Config{Epochs: 2, BatchSize: 16, LR: 0.002, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 300, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	acc, err := TopKAccuracy(m, ds, data.Val, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("adam accuracy = %v", acc)
	}
}

func TestTrainRegressor(t *testing.T) {
	m, _ := models.Build("comma")
	ds := data.NewDriving()
	rmseBefore, _, err := SteeringMetrics(m, ds, data.Val, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, ds, Config{Epochs: 2, BatchSize: 8, LR: 0.002, Momentum: 0.9, ClipNorm: 10, MaxPerEpoch: 200, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rmseAfter, dev, err := SteeringMetrics(m, ds, data.Val, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rmseAfter >= rmseBefore {
		t.Fatalf("rmse %v -> %v; regressor not learning", rmseBefore, rmseAfter)
	}
	if dev < 0 {
		t.Fatalf("avg dev = %v", dev)
	}
}

func TestMetricsKindChecks(t *testing.T) {
	cls, _ := models.Build("lenet")
	reg, _ := models.Build("comma")
	if _, err := TopKAccuracy(reg, data.NewDriving(), data.Val, 10, 1); err == nil {
		t.Fatal("want kind error")
	}
	if _, _, err := SteeringMetrics(cls, data.NewDigits(), data.Val, 10); err == nil {
		t.Fatal("want kind error")
	}
}

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"digits", "objects10", "signs", "imnet", "driving-rad", "driving-deg"} {
		if _, err := DatasetByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestZooWeightCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, _ := models.Build("lenet")
	ds := data.NewDigits()
	if _, err := Train(m, ds, Config{Epochs: 1, BatchSize: 16, LR: 0.05, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 100, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "lenet.weights")
	if err := saveWeights(path, m); err != nil {
		t.Fatal(err)
	}
	m2, _ := models.Build("lenet")
	if err := loadWeights(path, m2); err != nil {
		t.Fatal(err)
	}
	v1 := m.Graph.Variables()[0].Op().(*graph.Variable).Value
	v2 := m2.Graph.Variables()[0].Op().(*graph.Variable).Value
	for i := range v1.Data() {
		if v1.Data()[i] != v2.Data()[i] {
			t.Fatal("weights differ after round trip")
		}
	}
}

func TestZooCacheRejectsWrongModel(t *testing.T) {
	dir := t.TempDir()
	m, _ := models.Build("lenet")
	path := filepath.Join(dir, "w.weights")
	if err := saveWeights(path, m); err != nil {
		t.Fatal(err)
	}
	other, _ := models.Build("alexnet")
	if err := loadWeights(path, other); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestZooTrainsAndCaches(t *testing.T) {
	dir := t.TempDir()
	zoo := NewZoo(dir)
	zoo.Quiet = true
	// Temporarily shrink lenet's config via a fresh zoo on a tiny budget:
	// the zoo uses package-level configs, so this trains the real config.
	// Keep the test fast by checking the cache file side effect only for
	// lenet (2s budget).
	m1, err := zoo.Get("lenet")
	if err != nil {
		t.Fatal(err)
	}
	files, _ := os.ReadDir(dir)
	if len(files) == 0 {
		t.Fatal("no cache file written")
	}
	// A second zoo over the same dir must load without retraining and
	// produce identical weights.
	zoo2 := NewZoo(dir)
	zoo2.Quiet = true
	m2, err := zoo2.Get("lenet")
	if err != nil {
		t.Fatal(err)
	}
	v1 := m1.Graph.Variables()[0].Op().(*graph.Variable).Value
	v2 := m2.Graph.Variables()[0].Op().(*graph.Variable).Value
	for i := range v1.Data() {
		if v1.Data()[i] != v2.Data()[i] {
			t.Fatal("cached weights differ from trained weights")
		}
	}
	// Same-process cache returns the same instance.
	m3, _ := zoo.Get("lenet")
	if m3 != m1 {
		t.Fatal("in-memory cache miss")
	}
}
