// Package train provides the training substrate the paper's pipeline
// needs before Ranger can be applied: minibatch SGD with momentum and
// gradient clipping over the graph autodiff, evaluation metrics (top-k
// accuracy for classifiers, RMSE and average deviation per frame for the
// steering models, as in §V-A), and a model zoo that trains each benchmark
// once and caches its weights on disk.
package train

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/parallel"
	"ranger/internal/tensor"
)

// Optimizer selects the update rule.
type Optimizer string

// Supported optimizers.
const (
	SGD  Optimizer = "sgd"  // momentum SGD (default)
	Adam Optimizer = "adam" // Adam with beta1=0.9, beta2=0.999
)

// Config controls one training run.
type Config struct {
	Epochs       int
	BatchSize    int
	LR           float64
	Momentum     float64   // SGD momentum coefficient
	Optimizer    Optimizer // empty means SGD
	ClipNorm     float64   // global gradient-norm clip; 0 disables
	MaxPerEpoch  int       // cap on samples per epoch; 0 means full split
	Seed         int64
	LRDecay      float64 // multiplicative per-epoch decay; 0 means none
	ReportEvery  int     // batches between progress callbacks; 0 disables
	OnProgress   func(epoch, batch int, loss float64)
	WeightDecay  float64 // L2 regularization coefficient; 0 disables
	InputIndices []int   // explicit sample indices; nil means 0..MaxPerEpoch
}

// DefaultConfig returns a configuration that trains the scaled benchmarks
// to high accuracy on the synthetic datasets in seconds.
func DefaultConfig() Config {
	return Config{
		Epochs:    3,
		BatchSize: 16,
		LR:        0.05,
		Momentum:  0.9,
		ClipNorm:  5,
		Seed:      7,
	}
}

// Train optimizes the model's variables in place on the dataset's training
// split and returns the final epoch's mean loss.
func Train(m *models.Model, ds data.Dataset, cfg Config) (float64, error) {
	if cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("train: batch size %d", cfg.BatchSize)
	}
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("train: epochs %d", cfg.Epochs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ds.Len(data.Train)
	if cfg.MaxPerEpoch > 0 && cfg.MaxPerEpoch < n {
		n = cfg.MaxPerEpoch
	}
	indices := cfg.InputIndices
	if indices == nil {
		indices = make([]int, n)
		for i := range indices {
			indices[i] = i
		}
	}
	vars := m.Graph.Variables()
	velocity := make(map[string]*tensor.Tensor, len(vars))
	adamM := make(map[string]*tensor.Tensor, len(vars))
	adamV := make(map[string]*tensor.Tensor, len(vars))
	for _, v := range vars {
		shape := v.Op().(*graph.Variable).Value.Shape()
		velocity[v.Name()] = tensor.New(shape...)
		if cfg.Optimizer == Adam {
			adamM[v.Name()] = tensor.New(shape...)
			adamV[v.Name()] = tensor.New(shape...)
		}
	}
	step := 0
	var e graph.Executor
	lr := cfg.LR
	var lastEpochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(indices), func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(indices); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(indices) {
				end = len(indices)
			}
			x, labels, targets := data.Batch(ds, data.Train, indices[start:end])
			feeds := graph.Feeds{m.Input: x}
			if m.Kind == models.Classifier {
				feeds[m.Labels] = data.OneHot(labels, m.NumClasses)
			} else {
				feeds[m.Labels] = data.TargetTensor(targets)
			}
			cache, err := e.RunAll(m.Graph, feeds)
			if err != nil {
				return 0, fmt.Errorf("train forward: %w", err)
			}
			grads, err := e.Backward(m.Graph, cache, m.Loss)
			if err != nil {
				return 0, fmt.Errorf("train backward: %w", err)
			}
			clipGrads(grads, cfg.ClipNorm)
			step++
			for _, v := range vars {
				g, ok := grads[v.Name()]
				if !ok {
					continue
				}
				w := v.Op().(*graph.Variable).Value
				if cfg.WeightDecay > 0 {
					if err := g.AxpyInPlace(float32(cfg.WeightDecay), w); err != nil {
						return 0, err
					}
				}
				if cfg.Optimizer == Adam {
					adamUpdate(w, g, adamM[v.Name()], adamV[v.Name()], lr, step)
					continue
				}
				vel := velocity[v.Name()]
				for i := range vel.Data() {
					vel.Data()[i] = float32(cfg.Momentum)*vel.Data()[i] - float32(lr)*g.Data()[i]
					w.Data()[i] += vel.Data()[i]
				}
			}
			lossNode, _ := m.Graph.Node(m.Loss)
			loss := float64(cache[lossNode.ID()].Data()[0])
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				return 0, fmt.Errorf("train: loss diverged (NaN/Inf) at epoch %d", epoch)
			}
			epochLoss += loss
			batches++
			if cfg.ReportEvery > 0 && cfg.OnProgress != nil && batches%cfg.ReportEvery == 0 {
				cfg.OnProgress(epoch, batches, loss)
			}
		}
		lastEpochLoss = epochLoss / float64(batches)
		if cfg.LRDecay > 0 {
			lr *= cfg.LRDecay
		}
	}
	return lastEpochLoss, nil
}

// adamUpdate applies one bias-corrected Adam step to w.
func adamUpdate(w, g, m, v *tensor.Tensor, lr float64, step int) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	c1 := 1 - math.Pow(beta1, float64(step))
	c2 := 1 - math.Pow(beta2, float64(step))
	wd, gd, md, vd := w.Data(), g.Data(), m.Data(), v.Data()
	for i := range wd {
		gi := float64(gd[i])
		mi := beta1*float64(md[i]) + (1-beta1)*gi
		vi := beta2*float64(vd[i]) + (1-beta2)*gi*gi
		md[i], vd[i] = float32(mi), float32(vi)
		wd[i] -= float32(lr * (mi / c1) / (math.Sqrt(vi/c2) + eps))
	}
}

// clipGrads rescales all gradients so their global L2 norm is at most c.
func clipGrads(grads map[string]*tensor.Tensor, c float64) {
	if c <= 0 {
		return
	}
	var sq float64
	for _, g := range grads {
		for _, v := range g.Data() {
			sq += float64(v) * float64(v)
		}
	}
	norm := math.Sqrt(sq)
	if norm <= c {
		return
	}
	scale := float32(c / norm)
	for _, g := range grads {
		for i := range g.Data() {
			g.Data()[i] *= scale
		}
	}
}

// evalBatches runs fn over the batch ranges covering [0, n) through the
// worker pool, folding any error by lowest batch index. Each worker owns
// one arena-backed executor for its whole run of batches, so node
// buffers are recycled batch to batch and workers stay independent.
func evalBatches(n, batch int, fn func(e *graph.Executor, start, end int) error) error {
	batches := (n + batch - 1) / batch
	if batches <= 0 {
		return nil
	}
	errs := make([]error, batches)
	parallel.Shard(parallel.Workers(), batches, func(lo, hi int) {
		e := &graph.Executor{Arena: graph.NewArena()}
		for bi := lo; bi < hi; bi++ {
			start := bi * batch
			end := start + batch
			if end > n {
				end = n
			}
			errs[bi] = fn(e, start, end)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TopKAccuracy evaluates the model over the first n samples of a split
// and returns the fraction whose true label is among the top-k logits.
// Batches evaluate concurrently on the worker pool; the count reduction
// is order-independent, so results match the sequential path exactly.
func TopKAccuracy(m *models.Model, ds data.Dataset, split data.Split, n, k int) (float64, error) {
	if m.Kind != models.Classifier {
		return 0, fmt.Errorf("train: top-k accuracy on non-classifier %s", m.Name)
	}
	if n > ds.Len(split) {
		n = ds.Len(split)
	}
	if n <= 0 {
		return 0, nil
	}
	const batch = 16
	var correct atomic.Int64
	err := evalBatches(n, batch, func(e *graph.Executor, start, end int) error {
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, labels, _ := data.Batch(ds, split, idx)
		outs, err := e.Run(m.Graph, graph.Feeds{m.Input: x}, m.Output)
		if err != nil {
			return err
		}
		logits := outs[0]
		for i := range idx {
			row, err := rowOf(logits, i)
			if err != nil {
				return err
			}
			for _, cand := range row.TopK(k) {
				if cand == labels[i] {
					correct.Add(1)
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(correct.Load()) / float64(n), nil
}

// SteeringMetrics evaluates a regression model over the first n samples of
// a split and returns RMSE and average absolute deviation per frame, both
// in degrees (radian-output models are converted), matching the metrics
// the paper reports for the AV models.
func SteeringMetrics(m *models.Model, ds data.Dataset, split data.Split, n int) (rmse, avgDev float64, err error) {
	if m.Kind != models.Regressor {
		return 0, 0, fmt.Errorf("train: steering metrics on non-regressor %s", m.Name)
	}
	if n > ds.Len(split) {
		n = ds.Len(split)
	}
	if n <= 0 {
		return 0, 0, nil
	}
	const batch = 8
	batches := (n + batch - 1) / batch
	// Per-batch partial sums, reduced in batch order below so the float64
	// accumulation is identical at every worker count.
	sq := make([]float64, batches)
	abs := make([]float64, batches)
	err = evalBatches(n, batch, func(e *graph.Executor, start, end int) error {
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _, targets := data.Batch(ds, split, idx)
		outs, err := e.Run(m.Graph, graph.Feeds{m.Input: x}, m.Output)
		if err != nil {
			return err
		}
		pred := outs[0]
		bi := start / batch
		for i := range idx {
			p := float64(pred.At(i, 0))
			tgt := float64(targets[i])
			if !m.OutputInDegrees {
				p = data.RadiansToDegrees(p)
				tgt = data.RadiansToDegrees(tgt)
			}
			d := p - tgt
			sq[bi] += d * d
			abs[bi] += math.Abs(d)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	var sqSum, absSum float64
	for bi := 0; bi < batches; bi++ {
		sqSum += sq[bi]
		absSum += abs[bi]
	}
	rmse = math.Sqrt(sqSum / float64(n))
	avgDev = absSum / float64(n)
	return rmse, avgDev, nil
}

// rowOf slices row i of a rank-2 tensor into a rank-1 tensor view-copy.
func rowOf(t *tensor.Tensor, i int) (*tensor.Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("train: rowOf rank %d", t.Rank())
	}
	c := t.Dim(1)
	return tensor.FromSlice(t.Data()[i*c:(i+1)*c], c)
}
