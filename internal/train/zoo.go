package train

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ranger/internal/data"
	"ranger/internal/graph"
	"ranger/internal/models"
	"ranger/internal/tensor"
)

// DatasetByName resolves the synthetic dataset generators by the names
// models declare in their Dataset field.
func DatasetByName(name string) (data.Dataset, error) {
	switch name {
	case "digits":
		return data.NewDigits(), nil
	case "objects10":
		return data.NewObjects10(), nil
	case "signs":
		return data.NewSigns(), nil
	case "imnet":
		return data.NewImNet(), nil
	case "driving-rad":
		return data.NewDrivingRadians(), nil
	case "driving-deg":
		return data.NewDriving(), nil
	default:
		return nil, fmt.Errorf("train: unknown dataset %q", name)
	}
}

// zooConfigs holds the per-model training hyperparameters used by the
// zoo. The scaled benchmarks reach high accuracy on the synthetic
// datasets with these settings in seconds to tens of seconds each.
var zooConfigs = map[string]Config{
	"lenet":        {Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 600, Seed: 7},
	"lenet-tanh":   {Epochs: 4, BatchSize: 16, LR: 0.05, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 600, Seed: 7},
	"alexnet":      {Epochs: 4, BatchSize: 16, LR: 0.03, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 640, Seed: 7},
	"alexnet-tanh": {Epochs: 4, BatchSize: 16, LR: 0.03, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 640, Seed: 7},
	"vgg11":        {Epochs: 6, BatchSize: 16, LR: 0.002, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 800, Seed: 7},
	"vgg11-tanh":   {Epochs: 6, BatchSize: 16, LR: 0.002, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 800, Seed: 7},
	"vgg16":        {Epochs: 4, BatchSize: 16, LR: 0.002, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 800, Seed: 7},
	"resnet18":     {Epochs: 4, BatchSize: 16, LR: 0.002, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 800, Seed: 7},
	"squeezenet":   {Epochs: 6, BatchSize: 16, LR: 0.002, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 800, Seed: 7},
	"dave":         {Epochs: 4, BatchSize: 8, LR: 0.01, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 480, Seed: 7},
	"dave-tanh":    {Epochs: 4, BatchSize: 8, LR: 0.01, Momentum: 0.9, ClipNorm: 5, MaxPerEpoch: 480, Seed: 7},
	"dave-degrees": {Epochs: 8, BatchSize: 8, LR: 0.001, Optimizer: Adam, ClipNorm: 5, MaxPerEpoch: 480, Seed: 7},
	"comma":        {Epochs: 5, BatchSize: 8, LR: 0.002, Momentum: 0.9, ClipNorm: 10, MaxPerEpoch: 480, Seed: 7},
	"comma-tanh":   {Epochs: 5, BatchSize: 8, LR: 0.002, Momentum: 0.9, ClipNorm: 10, MaxPerEpoch: 480, Seed: 7},
}

// zooVersion busts the on-disk weight cache when architectures, datasets,
// or training configs change incompatibly.
const zooVersion = "v1"

// Zoo trains each benchmark model once and serves the trained instance,
// with an on-disk weight cache so separate processes (tests, benches,
// CLI tools) do not retrain. Get is safe for concurrent use and
// serializes per model name, so concurrent experiment sweeps can train
// (or load) distinct models at the same time.
type Zoo struct {
	mu     sync.Mutex
	locks  map[string]*sync.Mutex
	models map[string]*models.Model
	dir    string // cache dir; empty disables persistence
	Quiet  bool
}

var (
	defaultZoo     *Zoo
	defaultZooOnce sync.Once
)

// Default returns the process-wide zoo, caching weights under
// $RANGER_CACHE (or the OS user cache dir).
func Default() *Zoo {
	defaultZooOnce.Do(func() {
		dir := os.Getenv("RANGER_CACHE")
		if dir == "" {
			if base, err := os.UserCacheDir(); err == nil {
				dir = filepath.Join(base, "ranger-go")
			}
		}
		defaultZoo = &Zoo{models: make(map[string]*models.Model), dir: dir, Quiet: true}
	})
	return defaultZoo
}

// NewZoo returns a zoo caching into dir (empty disables the disk cache).
func NewZoo(dir string) *Zoo {
	return &Zoo{models: make(map[string]*models.Model), dir: dir}
}

// nameLock returns the mutex serializing first-use work for one model.
func (z *Zoo) nameLock(name string) *sync.Mutex {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.locks == nil {
		z.locks = make(map[string]*sync.Mutex)
	}
	l, ok := z.locks[name]
	if !ok {
		l = &sync.Mutex{}
		z.locks[name] = l
	}
	return l
}

// Get returns the trained model for name, training (or loading cached
// weights) on first use. Distinct models load/train concurrently; the
// same model is derived once.
func (z *Zoo) Get(name string) (*models.Model, error) {
	z.mu.Lock()
	if m, ok := z.models[name]; ok {
		z.mu.Unlock()
		return m, nil
	}
	z.mu.Unlock()
	lock := z.nameLock(name)
	lock.Lock()
	defer lock.Unlock()
	z.mu.Lock()
	if m, ok := z.models[name]; ok {
		z.mu.Unlock()
		return m, nil
	}
	z.mu.Unlock()
	m, err := models.Build(name)
	if err != nil {
		return nil, err
	}
	store := func() {
		z.mu.Lock()
		z.models[name] = m
		z.mu.Unlock()
	}
	if z.dir != "" {
		if err := loadWeights(z.cachePath(name), m); err == nil {
			store()
			return m, nil
		}
	}
	cfg, ok := zooConfigs[name]
	if !ok {
		cfg = DefaultConfig()
	}
	ds, err := DatasetByName(m.Dataset)
	if err != nil {
		return nil, err
	}
	if !z.Quiet {
		fmt.Fprintf(os.Stderr, "zoo: training %s on %s...\n", name, m.Dataset)
	}
	if _, err := Train(m, ds, cfg); err != nil {
		return nil, fmt.Errorf("zoo: train %s: %w", name, err)
	}
	if z.dir != "" {
		if err := saveWeights(z.cachePath(name), m); err != nil && !z.Quiet {
			fmt.Fprintf(os.Stderr, "zoo: could not cache %s weights: %v\n", name, err)
		}
	}
	store()
	return m, nil
}

// MustGet is Get but panics on error, for experiment harness internals.
func (z *Zoo) MustGet(name string) *models.Model {
	m, err := z.Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// DatasetOf returns the dataset for a model previously obtained.
func (z *Zoo) DatasetOf(m *models.Model) (data.Dataset, error) {
	return DatasetByName(m.Dataset)
}

func (z *Zoo) cachePath(name string) string {
	return filepath.Join(z.dir, fmt.Sprintf("%s-%s.weights", name, zooVersion))
}

// weightFile is the gob-encoded on-disk format.
type weightFile struct {
	Version string
	Vars    map[string]weightEntry
}

type weightEntry struct {
	Shape []int
	Data  []float32
}

func saveWeights(path string, m *models.Model) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	wf := weightFile{Version: zooVersion, Vars: make(map[string]weightEntry)}
	for _, v := range m.Graph.Variables() {
		val := v.Op().(*graph.Variable).Value
		wf.Vars[v.Name()] = weightEntry{Shape: val.Shape(), Data: append([]float32{}, val.Data()...)}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(wf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func loadWeights(path string, m *models.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var wf weightFile
	if err := gob.NewDecoder(f).Decode(&wf); err != nil {
		return err
	}
	if wf.Version != zooVersion {
		return fmt.Errorf("train: cache version %q, want %q", wf.Version, zooVersion)
	}
	vars := m.Graph.Variables()
	if len(wf.Vars) != len(vars) {
		return fmt.Errorf("train: cache has %d vars, model has %d", len(wf.Vars), len(vars))
	}
	for _, v := range vars {
		entry, ok := wf.Vars[v.Name()]
		if !ok {
			return fmt.Errorf("train: cache missing %q", v.Name())
		}
		val := v.Op().(*graph.Variable).Value
		if len(entry.Data) != val.Size() {
			return fmt.Errorf("train: cache %q has %d values, want %d", v.Name(), len(entry.Data), val.Size())
		}
		t, err := tensor.FromSlice(entry.Data, entry.Shape...)
		if err != nil {
			return err
		}
		if !t.SameShape(val) {
			return fmt.Errorf("train: cache %q shape %v, want %v", v.Name(), entry.Shape, val.Shape())
		}
		copy(val.Data(), entry.Data)
	}
	return nil
}
