package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("size = %d, want 24", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceShapeMismatch(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want shape error")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := x.Data()[1*3+2]; got != 7 {
		t.Fatalf("row-major offset = %v, want 7", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeInfer(t *testing.T) {
	x := New(2, 3, 4)
	y, err := x.Reshape(2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("shape = %v", y.Shape())
	}
	// Reshape shares data.
	y.Data()[0] = 5
	if x.Data()[0] != 5 {
		t.Fatal("reshape should share backing data")
	}
}

func TestReshapeErrors(t *testing.T) {
	x := New(2, 3)
	if _, err := x.Reshape(4, -1); err == nil {
		t.Fatal("want error: 6 elements not divisible by 4")
	}
	if _, err := x.Reshape(-1, -1); err == nil {
		t.Fatal("want error: two inferred dims")
	}
	if _, err := x.Reshape(7); err == nil {
		t.Fatal("want error: wrong element count")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data()[0] = 9
	if x.Data()[0] != 1 {
		t.Fatal("clone should not alias")
	}
}

func TestArithmetic(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{5, 6, 7, 8}, 2, 2)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 12 {
		t.Fatalf("add = %v", sum.Data())
	}
	diff, _ := b.Sub(a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("sub = %v", diff.Data())
	}
	prod, _ := a.Mul(b)
	if prod.At(0, 1) != 12 {
		t.Fatalf("mul = %v", prod.Data())
	}
	if got := a.Scale(2).At(1, 0); got != 6 {
		t.Fatalf("scale = %v", got)
	}
}

func TestArithmeticShapeErrors(t *testing.T) {
	a, b := New(2, 2), New(3)
	if _, err := a.Add(b); err == nil {
		t.Fatal("add: want shape error")
	}
	if _, err := a.Sub(b); err == nil {
		t.Fatal("sub: want shape error")
	}
	if _, err := a.Mul(b); err == nil {
		t.Fatal("mul: want shape error")
	}
	if err := a.AxpyInPlace(1, b); err == nil {
		t.Fatal("axpy: want shape error")
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float32{-3, 7, 0, 2}, 4)
	if x.Sum() != 6 {
		t.Fatalf("sum = %v", x.Sum())
	}
	if x.Max() != 7 {
		t.Fatalf("max = %v", x.Max())
	}
	if x.Min() != -3 {
		t.Fatalf("min = %v", x.Min())
	}
	if x.ArgMax() != 1 {
		t.Fatalf("argmax = %v", x.ArgMax())
	}
}

func TestTopK(t *testing.T) {
	x := MustFromSlice([]float32{1, 9, 3, 7, 5}, 5)
	got := x.TopK(3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk = %v, want %v", got, want)
		}
	}
	if got := x.TopK(99); len(got) != 5 {
		t.Fatalf("topk overflow = %v", got)
	}
}

func TestClamp(t *testing.T) {
	x := MustFromSlice([]float32{-5, 0, 5, 10}, 4)
	x.Clamp(0, 6)
	want := []float32{0, 0, 5, 6}
	for i, w := range want {
		if x.Data()[i] != w {
			t.Fatalf("clamp = %v, want %v", x.Data(), want)
		}
	}
}

// Property: clamp output is always within [lo, hi], and elements already
// inside the range are unchanged. This is the core invariant Ranger's
// restriction relies on.
func TestClampProperty(t *testing.T) {
	f := func(vals []float32, lo, hi float32) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		if len(vals) == 0 {
			return true
		}
		x := MustFromSlice(append([]float32{}, vals...), len(vals))
		x.Clamp(lo, hi)
		for i, v := range x.Data() {
			orig := vals[i]
			if math.IsNaN(float64(orig)) {
				continue // NaN comparisons are all false; clamp leaves NaN
			}
			if v < lo || v > hi {
				return false
			}
			if orig >= lo && orig <= hi && v != orig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMul(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("matmul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulShapeError(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := MatMul(New(2), New(2, 2)); err == nil {
		t.Fatal("want rank error")
	}
}

// Property: MatMulTransA(a,b) == MatMul(aᵀ,b) and MatMulTransB(a,b) ==
// MatMul(a,bᵀ) for random matrices.
func TestMatMulTransConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(k, m).Randn(rng, 1)
		b := New(k, n).Randn(rng, 1)
		got, err := MatMulTransA(a, b)
		if err != nil {
			t.Fatal(err)
		}
		at, _ := Transpose(a)
		want, _ := MatMul(at, b)
		for i := range want.Data() {
			if !almostEq(got.Data()[i], want.Data()[i], 1e-4) {
				t.Fatalf("transA mismatch at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
			}
		}
		c := New(m, k).Randn(rng, 1)
		d := New(n, k).Randn(rng, 1)
		got2, err := MatMulTransB(c, d)
		if err != nil {
			t.Fatal(err)
		}
		dt, _ := Transpose(d)
		want2, _ := MatMul(c, dt)
		for i := range want2.Data() {
			if !almostEq(got2.Data()[i], want2.Data()[i], 1e-4) {
				t.Fatalf("transB mismatch at %d", i)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	if at.Dim(0) != 3 || at.Dim(1) != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose = %v %v", at.Shape(), at.Data())
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := New(16).Randn(rand.New(rand.NewSource(42)), 1)
	b := New(16).Randn(rand.New(rand.NewSource(42)), 1)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed should give identical fills")
		}
	}
}
