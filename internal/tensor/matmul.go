package tensor

import (
	"fmt"
	"sync"

	"ranger/internal/parallel"
)

// Kernel blocking parameters. The B-panel block (blockK x blockN float32s)
// is sized to sit in L2 while it is reused across every output row of a
// worker's shard.
const (
	blockK = 128
	blockN = 512
)

// parallelFLOPCutoff is the approximate multiply-add count below which the
// kernels stay on the calling goroutine; tiny matmuls are dominated by
// goroutine hand-off, not arithmetic.
const parallelFLOPCutoff = 1 << 16

// kernelWorkers returns the worker count for a kernel of the given
// multiply-add volume: 1 below the cutoff, the process default above it.
func kernelWorkers(flops int) int {
	if flops < parallelFLOPCutoff {
		return 1
	}
	return parallel.Workers()
}

// matmulRows is the row-sharded matmul kernel body for output rows
// [lo, hi): (m,k)x(k,n) operand slices ad/bd into od.
func matmulRows(ad, bd, od []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		clear(orow)
		if n <= blockN {
			// Single j-block: the sequential kernel's loops verbatim.
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
			continue
		}
		for p0 := 0; p0 < k; p0 += blockK {
			p1 := min(p0+blockK, k)
			for j0 := 0; j0 < n; j0 += blockN {
				j1 := min(j0+blockN, n)
				ob := orow[j0:j1]
				for p := p0; p < p1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := bd[p*n+j0 : p*n+j1]
					for j, bv := range brow {
						ob[j] += av * bv
					}
				}
			}
		}
	}
}

// PackMinRows is the row count below which the panel-packed kernel
// (MatMulPackInto) is not worth its packing pass and delegates to the
// batch-1 kernels. Lane-batched execution engages at 2 lanes for dense
// layers because even B=2 halves the weight streaming, but a packed
// panel only pays for itself once it is reused across a few rows.
const PackMinRows = 4

// PackPanelLen is the float32 (or int8) capacity of one packed B-panel
// block — the buffer callers hand MatMulPackInto to keep its packing
// allocation-free on the campaign hot path.
const PackPanelLen = blockK * blockN

// panelPool recycles the per-worker panel buffers of the parallel
// packed-kernel paths (the single-worker path uses the caller's buffer).
var panelPool = sync.Pool{New: func() any { return make([]float32, PackPanelLen) }}

// matmulPanels is the lane-batched kernel body for output rows [lo, hi)
// and columns [jw0, jw1): each B-panel block is copied once into the
// contiguous pack buffer and then reused across every output row, so B
// batched lanes (or B·OH·OW conv patch rows) amortize the weight
// streaming that the row kernel repeats per row. Per output element the
// reduction still runs p-ascending across ascending p-blocks — exactly
// the sequence matmulRows uses — so results are bit-identical to the
// batch-1 kernels at every blocking and worker count.
func matmulPanels(ad, bd, od []float32, k, n, lo, hi, jw0, jw1 int, pack []float32) {
	for j0 := jw0; j0 < jw1; j0 += blockN {
		j1 := min(j0+blockN, jw1)
		w := j1 - j0
		for i := lo; i < hi; i++ {
			clear(od[i*n+j0 : i*n+j1])
		}
		for p0 := 0; p0 < k; p0 += blockK {
			p1 := min(p0+blockK, k)
			for p := p0; p < p1; p++ {
				copy(pack[(p-p0)*w:(p-p0+1)*w], bd[p*n+j0:p*n+j1])
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				ob := od[i*n+j0 : i*n+j1]
				for p := p0; p < p1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := pack[(p-p0)*w : (p-p0)*w+w]
					for j, bv := range brow {
						ob[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulPackInto computes a·b into dst exactly like MatMulInto, but
// through the panel-packed lane-batched kernel: B-panel blocks are
// copied once into a contiguous buffer and reused across all output
// rows. pack, when non-nil, provides the panel storage (PackPanelLen
// elements; see PlanState scratch usage) so steady-state calls allocate
// nothing; a nil or short pack allocates. Outputs are bit-identical to
// MatMulInto — per-element accumulation order is unchanged — so callers
// switch on row count alone: below PackMinRows rows the packing pass
// cannot amortize and the call delegates to MatMulInto.
func MatMulPackInto(dst, a, b *Tensor, pack []float32) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul ranks %d x %d", ErrShape, a.Rank(), b.Rank())
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	if m < PackMinRows {
		return MatMulInto(dst, a, b)
	}
	out, err := prepDst(dst, m, n)
	if err != nil {
		return nil, err
	}
	ad, bd, od := a.data, b.data, out.data
	workers := kernelWorkers(m * k * n)
	if workers <= 1 {
		if cap(pack) < PackPanelLen {
			pack = make([]float32, PackPanelLen)
		}
		matmulPanels(ad, bd, od, k, n, 0, m, 0, n, pack[:PackPanelLen])
		return out, nil
	}
	if nb := (n + blockN - 1) / blockN; nb >= workers {
		// Wide output: shard whole column blocks so no two workers pack
		// the same panel.
		parallel.Shard(workers, nb, func(b0, b1 int) {
			wp := panelPool.Get().([]float32)
			matmulPanels(ad, bd, od, k, n, 0, m, b0*blockN, min(b1*blockN, n), wp)
			panelPool.Put(wp)
		})
		return out, nil
	}
	// Narrow output: shard rows. Workers re-pack the same panels, but the
	// packing cost (k·n copies) is negligible against each worker's
	// rows·k·n multiply-adds.
	parallel.Shard(workers, m, func(lo, hi int) {
		wp := panelPool.Get().([]float32)
		matmulPanels(ad, bd, od, k, n, lo, hi, 0, n, wp)
		panelPool.Put(wp)
	})
	return out, nil
}

// All three matmul kernels shard output rows across workers and walk the
// reduction dimension in ascending order within each row, so every output
// element accumulates its products in exactly the sequence the sequential
// kernel used. Results are therefore bit-identical at every worker count
// and block size.

// MatMul returns the matrix product of two rank-2 tensors: (m,k)x(k,n)->(m,n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	return MatMulInto(nil, a, b)
}

// MatMulInto computes a·b into dst, which must be (m,n) (its contents are
// overwritten); dst == nil allocates. It returns dst.
func MatMulInto(dst, a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul ranks %d x %d", ErrShape, a.Rank(), b.Rank())
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	out, err := prepDst(dst, m, n)
	if err != nil {
		return nil, err
	}
	ad, bd, od := a.data, b.data, out.data
	workers := kernelWorkers(m * k * n)
	if m >= workers || m >= n {
		// Row sharding: each worker owns contiguous output rows and keeps
		// its current row resident while streaming B in p-major order,
		// blocking j so wide B rows stay L1-resident across the p-block.
		// The single-worker path calls the kernel directly — routing it
		// through Shard would heap-allocate the closure per call, which
		// the zero-alloc campaign trial loop cannot afford.
		if workers <= 1 {
			matmulRows(ad, bd, od, k, n, 0, m)
		} else {
			parallel.Shard(workers, m, func(lo, hi int) {
				matmulRows(ad, bd, od, k, n, lo, hi)
			})
		}
		return out, nil
	}
	// Few tall rows (batch-1 dense layers): shard output columns instead,
	// each worker streaming its B column stripe. Per-element accumulation
	// is p-ascending in both paths, so results are bitwise identical.
	parallel.Shard(workers, n, func(j0, j1 int) {
		for i := 0; i < m; i++ {
			arow := ad[i*k : (i+1)*k]
			ob := od[i*n+j0 : i*n+j1]
			clear(ob)
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n+j0 : p*n+j1]
				for j, bv := range brow {
					ob[j] += av * bv
				}
			}
		}
	})
	return out, nil
}

// MatMulTransA returns aᵀ·b for a (k,m) and b (k,n), yielding (m,n).
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	return MatMulTransAInto(nil, a, b)
}

// MatMulTransAInto computes aᵀ·b into dst ((m,n), overwritten; nil
// allocates) and returns dst.
func MatMulTransAInto(dst, a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[0] != b.shape[0] {
		return nil, fmt.Errorf("%w: matmulTransA %v x %v", ErrShape, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	out, err := prepDst(dst, m, n)
	if err != nil {
		return nil, err
	}
	ad, bd, od := a.data, b.data, out.data
	// Column sharding: every worker keeps the sequential kernel's p-major
	// streaming over a (row-major, zero-skipping) and owns a disjoint
	// column stripe of the output; a is re-streamed per worker, which is
	// cheap next to the j-work it amortizes.
	parallel.Shard(kernelWorkers(m*k*n), n, func(j0, j1 int) {
		for i := 0; i < m; i++ {
			clear(od[i*n+j0 : i*n+j1])
		}
		for p := 0; p < k; p++ {
			arow := ad[p*m : (p+1)*m]
			brow := bd[p*n+j0 : p*n+j1]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := od[i*n+j0 : i*n+j1]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out, nil
}

// MatMulTransB returns a·bᵀ for a (m,k) and b (n,k), yielding (m,n).
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	return MatMulTransBInto(nil, a, b)
}

// MatMulTransBInto computes a·bᵀ into dst ((m,n), overwritten; nil
// allocates) and returns dst.
func MatMulTransBInto(dst, a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[1] {
		return nil, fmt.Errorf("%w: matmulTransB %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out, err := prepDst(dst, m, n)
	if err != nil {
		return nil, err
	}
	ad, bd, od := a.data, b.data, out.data
	// Row sharding with the sequential kernel's loops: each output element
	// is one contiguous dot product, so there is nothing for blocking to
	// keep resident — workers just own disjoint row ranges.
	parallel.Shard(kernelWorkers(m*k*n), m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out, nil
}

// prepDst validates or allocates an (m,n) kernel destination.
func prepDst(dst *Tensor, m, n int) (*Tensor, error) {
	if dst == nil {
		// New zero-fills; the kernels clear their own shards, which is
		// redundant here but keeps the dst-reuse path identical.
		return New(m, n), nil
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return nil, fmt.Errorf("%w: matmul dst %v, want [%d %d]", ErrShape, dst.shape, m, n)
	}
	return dst, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose rank %d", ErrShape, a.Rank())
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}
