package tensor

import "fmt"

// MatMul returns the matrix product of two rank-2 tensors: (m,k)x(k,n)->(m,n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul ranks %d x %d", ErrShape, a.Rank(), b.Rank())
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// MatMulTransA returns aᵀ·b for a (k,m) and b (k,n), yielding (m,n).
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[0] != b.shape[0] {
		return nil, fmt.Errorf("%w: matmulTransA %v x %v", ErrShape, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulTransB returns a·bᵀ for a (m,k) and b (n,k), yielding (m,n).
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[1] {
		return nil, fmt.Errorf("%w: matmulTransB %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose rank %d", ErrShape, a.Rank())
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}
