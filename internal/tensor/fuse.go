package tensor

// Fused epilogues. A compiled execution plan collapses chains of
// elementwise operators (BiasAdd, activations, RangerClip, Scale) into
// the evaluation of their producer: the producer's kernel writes its
// output buffer once, and the chain is then applied as a single in-place
// pass over that buffer — the clamp runs in the same loop as the
// activation instead of costing a full extra read-modify-write pass per
// operator. Each stage reproduces the corresponding operator's scalar
// arithmetic exactly, so fused and unfused execution are bit-identical.

// StageKind enumerates the elementwise transforms a fused epilogue can
// apply.
type StageKind uint8

// Stage kinds.
const (
	// StageBias adds a vector broadcast over the last dimension:
	// v += Vec[i%C] (the BiasAdd loop).
	StageBias StageKind = iota + 1
	// StageRelu applies max(v, 0). ReLU is special-cased so the hottest
	// activation needs no per-element indirect call.
	StageRelu
	// StageMap applies an arbitrary scalar function F (Tanh, Sigmoid,
	// Elu, Atan).
	StageMap
	// StageClamp truncates into [Lo, Hi] (the RangerClip default policy).
	StageClamp
	// StageScale multiplies by A.
	StageScale
)

// Stage is one elementwise transform of a fused epilogue. Which fields
// are meaningful depends on Kind; the zero value is invalid.
type Stage struct {
	Kind StageKind
	// Vec and C configure StageBias: v += Vec[i%C]. C must equal
	// len(Vec) and the output's last dimension.
	Vec []float32
	C   int
	// F configures StageMap.
	F func(float32) float32
	// Lo and Hi configure StageClamp.
	Lo, Hi float32
	// A configures StageScale.
	A float32
}

// Epilogue is an ordered sequence of stages applied in one pass.
type Epilogue []Stage

// canon is the specialized form of the dominant epilogue shape
// (bias? → relu? → clamp?), covering MatMul/Conv + BiasAdd + ReLU +
// RangerClip chains without per-element stage dispatch.
type canon struct {
	vec    []float32
	c      int
	relu   bool
	clamp  bool
	lo, hi float32
}

// canonical reports whether the epilogue is a subsequence of
// [bias, relu, clamp] and returns its specialized form.
func (e Epilogue) canonical() (canon, bool) {
	var cn canon
	next := 0 // 0: bias allowed, 1: relu allowed, 2: clamp allowed, 3: done
	for _, st := range e {
		switch st.Kind {
		case StageBias:
			if next > 0 {
				return cn, false
			}
			cn.vec, cn.c = st.Vec, st.C
			next = 1
		case StageRelu:
			if next > 1 {
				return cn, false
			}
			cn.relu = true
			next = 2
		case StageClamp:
			if next > 2 {
				return cn, false
			}
			cn.clamp, cn.lo, cn.hi = true, st.Lo, st.Hi
			next = 3
		default:
			return cn, false
		}
	}
	return cn, true
}

// Apply runs every stage over data in place, reading and writing each
// element exactly once regardless of the number of stages.
func (e Epilogue) Apply(data []float32) {
	if len(e) == 0 {
		return
	}
	if cn, ok := e.canonical(); ok {
		cn.apply(data)
		return
	}
	// Inline stage loop (not a per-element ApplyAt call): this is the
	// fp32 fused epilogue's hot path and must not pay a non-inlinable
	// function call per element.
	for i, v := range data {
		for si := range e {
			st := &e[si]
			switch st.Kind {
			case StageBias:
				v += st.Vec[i%st.C]
			case StageRelu:
				// !(v > 0), not v < 0: NaN and -0.0 must map to +0
				// exactly like the unfused ReLU kernel.
				if !(v > 0) {
					v = 0
				}
			case StageMap:
				v = st.F(v)
			case StageClamp:
				if v < st.Lo {
					v = st.Lo
				} else if v > st.Hi {
					v = st.Hi
				}
			case StageScale:
				v *= st.A
			}
		}
		data[i] = v
	}
}

// ApplyAt applies every stage to one value at flat index i — the scalar
// form of Apply (same stage semantics, element by element), used by
// quantized kernels that fold the epilogue into their requantization
// pass.
func (e Epilogue) ApplyAt(v float32, i int) float32 {
	for si := range e {
		st := &e[si]
		switch st.Kind {
		case StageBias:
			v += st.Vec[i%st.C]
		case StageRelu:
			// !(v > 0), not v < 0: NaN and -0.0 must map to +0
			// exactly like the unfused ReLU kernel.
			if !(v > 0) {
				v = 0
			}
		case StageMap:
			v = st.F(v)
		case StageClamp:
			if v < st.Lo {
				v = st.Lo
			} else if v > st.Hi {
				v = st.Hi
			}
		case StageScale:
			v *= st.A
		}
	}
	return v
}

func (cn canon) apply(data []float32) {
	vec, c := cn.vec, cn.c
	for i, v := range data {
		if vec != nil {
			v += vec[i%c]
		}
		if cn.relu && !(v > 0) {
			v = 0
		}
		if cn.clamp {
			if v < cn.lo {
				v = cn.lo
			} else if v > cn.hi {
				v = cn.hi
			}
		}
		data[i] = v
	}
}
