package tensor

import (
	"math"
	"math/rand"
	"testing"

	"ranger/internal/parallel"
)

// randMat builds an (m,n) tensor with a mix of magnitudes and exact
// zeros, so the packed kernel's zero-skip and accumulation order face
// the same values the row kernel sees.
func randMat(rng *rand.Rand, m, n int) *Tensor {
	t := New(m, n)
	d := t.Data()
	for i := range d {
		switch rng.Intn(5) {
		case 0:
			d[i] = 0 // exercise the zero-skip path
		case 1:
			d[i] = float32(rng.NormFloat64() * 1e-3)
		default:
			d[i] = float32(rng.NormFloat64())
		}
	}
	return t
}

// TestMatMulPackBitIdentical pins the packed lane-batched kernel to the
// row kernel bit for bit, across shapes spanning every internal path
// (single block, wide-N blocked, tall-M, lane counts around PackMinRows)
// and worker counts.
func TestMatMulPackBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 7, 9},    // below PackMinRows: delegates to MatMulInto
		{4, 16, 8},   // minimum packed rows
		{8, 130, 40}, // spans a blockK boundary
		{16, 64, 600},
		{5, 300, 1100}, // multiple j-blocks
		{37, 128, 512}, // exact block sizes
	}
	for _, workers := range []int{1, 3} {
		parallel.SetWorkers(workers)
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a, b := randMat(rng, m, k), randMat(rng, k, n)
			want, err := MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			pack := make([]float32, PackPanelLen)
			got, err := MatMulPackInto(New(m, n), a, b, pack)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want.Data() {
				if g := got.Data()[i]; math.Float32bits(g) != math.Float32bits(w) {
					t.Fatalf("workers=%d (%d,%d)x(%d,%d): elem %d: packed %g != row %g",
						workers, m, k, k, n, i, g, w)
				}
			}
			// nil pack must allocate its own panel and still agree.
			got2, err := MatMulPackInto(nil, a, b, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want.Data() {
				if g := got2.Data()[i]; math.Float32bits(g) != math.Float32bits(w) {
					t.Fatalf("workers=%d nil-pack elem %d: %g != %g", workers, i, g, w)
				}
			}
		}
	}
	parallel.SetWorkers(0)
}

// TestQMatMulPackIdentical pins the packed int8 kernel to QMatMul: the
// int32 accumulation is exact, so outputs must match byte for byte.
func TestQMatMulPackIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	requant := func(acc []int32, outRow []int8) {
		for j, v := range acc {
			q := v >> 4
			if q > 127 {
				q = 127
			} else if q < -128 {
				q = -128
			}
			outRow[j] = int8(q)
		}
	}
	shapes := [][3]int{{2, 9, 5}, {4, 40, 33}, {12, 130, 600}, {33, 256, 1024}}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := make([]int8, m*k)
			w := make([]int8, k*n)
			for i := range a {
				a[i] = int8(rng.Intn(256) - 128)
			}
			for i := range w {
				w[i] = int8(rng.Intn(256) - 128)
			}
			za := int32(a[0]) // make some operands hit the zero-skip
			want := make([]int8, m*n)
			if err := QMatMul(a, za, m, k, w, n, want, requant); err != nil {
				t.Fatal(err)
			}
			got := make([]int8, m*n)
			var tmp QScratch
			if err := QMatMulPack(a, za, m, k, w, n, got, requant, &tmp); err != nil {
				t.Fatal(err)
			}
			for i, v := range want {
				if got[i] != v {
					t.Fatalf("workers=%d (%d,%d,%d): elem %d: packed %d != %d", workers, m, k, n, i, got[i], v)
				}
			}
			got2 := make([]int8, m*n)
			if err := QMatMulPack(a, za, m, k, w, n, got2, requant, nil); err != nil {
				t.Fatal(err)
			}
			for i, v := range want {
				if got2[i] != v {
					t.Fatalf("workers=%d nil-tmp elem %d: %d != %d", workers, i, got2[i], v)
				}
			}
		}
	}
	parallel.SetWorkers(0)
}
