package tensor

import (
	"fmt"

	"ranger/internal/parallel"
)

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// over NHWC tensors. Padding is symmetric ("SAME"-style when computed via
// SamePad, zero for "VALID").
type ConvGeom struct {
	KH, KW     int // kernel height and width
	SH, SW     int // strides
	PadH, PadW int // symmetric padding on each side
}

// OutDims returns the spatial output size for an input of (h, w).
func (g ConvGeom) OutDims(h, w int) (int, int) {
	oh := (h+2*g.PadH-g.KH)/g.SH + 1
	ow := (w+2*g.PadW-g.KW)/g.SW + 1
	return oh, ow
}

// SamePad returns the symmetric padding that keeps output size ceil(in/stride)
// for odd kernels; it matches TensorFlow's SAME padding for stride 1.
func SamePad(k int) int { return (k - 1) / 2 }

// Im2Col lowers an NHWC input into a matrix of patch rows: the result has
// shape (N*OH*OW, KH*KW*C), so a convolution becomes a single matrix
// multiply against a (KH*KW*C, outC) kernel matrix.
func Im2Col(x *Tensor, g ConvGeom) (*Tensor, error) {
	return Im2ColInto(nil, x, g)
}

// Im2ColInto lowers x into dst, which must be (N*OH*OW, KH*KW*C) (its
// contents are overwritten); dst == nil allocates. Patch rows are sharded
// across workers; every row is written by exactly one worker, so results
// are identical at every worker count.
func Im2ColInto(dst *Tensor, x *Tensor, g ConvGeom) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("%w: im2col wants NHWC, got %v", ErrShape, x.shape)
	}
	n, h, w, c := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: im2col output %dx%d for input %v geom %+v", ErrShape, oh, ow, x.shape, g)
	}
	rowLen := g.KH * g.KW * c
	rows := n * oh * ow
	cols := dst
	if cols == nil {
		cols = New(rows, rowLen)
	} else if cols.Rank() != 2 || cols.shape[0] != rows || cols.shape[1] != rowLen {
		return nil, fmt.Errorf("%w: im2col dst %v, want [%d %d]", ErrShape, cols.shape, rows, rowLen)
	}
	xd, cd := x.data, cols.data
	parallel.Shard(kernelWorkers(rows*rowLen), rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / (oh * ow)
			oy := r / ow % oh
			ox := r % ow
			row := r * rowLen
			clear(cd[row : row+rowLen]) // padding taps stay zero
			for ky := 0; ky < g.KH; ky++ {
				iy := oy*g.SH - g.PadH + ky
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < g.KW; kx++ {
					ix := ox*g.SW - g.PadW + kx
					if ix < 0 || ix >= w {
						continue
					}
					src := ((b*h+iy)*w + ix) * c
					dst := row + (ky*g.KW+kx)*c
					copy(cd[dst:dst+c], xd[src:src+c])
				}
			}
		}
	})
	return cols, nil
}

// Col2Im scatters patch-row gradients back to NHWC input gradients; it is
// the adjoint of Im2Col. shape gives the original input shape.
func Col2Im(cols *Tensor, shape []int, g ConvGeom) (*Tensor, error) {
	if len(shape) != 4 {
		return nil, fmt.Errorf("%w: col2im wants NHWC shape, got %v", ErrShape, shape)
	}
	n, h, w, c := shape[0], shape[1], shape[2], shape[3]
	oh, ow := g.OutDims(h, w)
	rowLen := g.KH * g.KW * c
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		return nil, fmt.Errorf("%w: col2im cols %v for shape %v geom %+v", ErrShape, cols.shape, shape, g)
	}
	out := New(shape...)
	cd, od := cols.data, out.data
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := ((b*oh+oy)*ow + ox) * rowLen
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.SH - g.PadH + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.SW - g.PadW + kx
						if ix < 0 || ix >= w {
							continue
						}
						dst := ((b*h+iy)*w + ix) * c
						src := row + (ky*g.KW+kx)*c
						for ch := 0; ch < c; ch++ {
							od[dst+ch] += cd[src+ch]
						}
					}
				}
			}
		}
	}
	return out, nil
}
