package tensor

import (
	"fmt"
	"math"
)

// Int8 quantized tensors. A QTensor stores int8 values with per-tensor
// affine quantization parameters: real = Scale * (q - Zero). This is the
// deployed numeric format of post-training-quantized inference — the
// quantized execution plan (graph.Quantize) runs entirely on QTensors,
// and the int8 fault scenarios flip bits in this representation.

// QParams are per-tensor affine int8 quantization parameters mapping a
// stored value q to the real value Scale*(q-Zero). Zero is always a
// representable int8 so that real 0.0 quantizes exactly (padding and
// ReLU floors stay exact).
type QParams struct {
	Scale float32
	Zero  int32
}

// QParamsFor derives parameters covering the real interval [lo, hi],
// widened to include 0 so the zero point is exact. A degenerate interval
// yields Scale 1 (every value maps to the zero point).
func QParamsFor(lo, hi float64) QParams {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return QParams{Scale: 1, Zero: 0}
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	span := hi - lo
	if span <= 0 || math.IsInf(span, 0) {
		return QParams{Scale: 1, Zero: 0}
	}
	scale := span / 255
	zero := RoundI32(float32(-128 - lo/scale))
	if zero < -128 {
		zero = -128
	} else if zero > 127 {
		zero = 127
	}
	return QParams{Scale: float32(scale), Zero: zero}
}

// QParamsSymmetric derives symmetric (zero-point-0) parameters covering
// [-maxAbs, maxAbs]; the convention for weight tensors, which keeps the
// int8 GEMM's zero-point correction to a single per-column term.
func QParamsSymmetric(maxAbs float64) QParams {
	if maxAbs <= 0 || math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
		return QParams{Scale: 1, Zero: 0}
	}
	return QParams{Scale: float32(maxAbs / 127), Zero: 0}
}

// RoundI32 rounds to the nearest int32, ties away from zero. It is the
// single rounding rule of the quantized backend, so every path
// (quantize, LUT building, requantization) is bit-consistent.
func RoundI32(v float32) int32 {
	if v >= 0 {
		return int32(v + 0.5)
	}
	return int32(v - 0.5)
}

// Quantize maps a real value into the int8 domain, saturating at the
// representable range. NaN maps to the lower saturation bound.
func (p QParams) Quantize(v float32) int8 {
	q := v/p.Scale + float32(p.Zero)
	if !(q > -128) { // NaN or below range
		return -128
	}
	if q > 127 {
		return 127
	}
	return int8(RoundI32(q))
}

// Dequantize maps a stored int8 value back to its real value.
func (p QParams) Dequantize(q int8) float32 {
	return p.Scale * float32(int32(q)-p.Zero)
}

// QTensor is a dense int8 tensor in row-major order with per-tensor
// affine quantization parameters. The zero value is not usable;
// construct with NewQ or QFromSlice.
type QTensor struct {
	shape []int
	data  []int8
	// P holds the tensor's quantization parameters.
	P QParams
}

// NewQ returns a zero-filled quantized tensor with the given parameters
// and shape.
func NewQ(p QParams, shape ...int) *QTensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &QTensor{shape: s, data: make([]int8, n), P: p}
}

// QFromSlice wraps data in a quantized tensor of the given shape. The
// slice is used directly (not copied).
func QFromSlice(data []int8, p QParams, shape ...int) (*QTensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d elements for shape %v (%d)", ErrShape, len(data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &QTensor{shape: s, data: data, P: p}, nil
}

// Shape returns a copy of the tensor's shape.
func (t *QTensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Rank returns the number of dimensions.
func (t *QTensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *QTensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *QTensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; this
// is the access path for kernels and the int8 fault injector.
func (t *QTensor) Data() []int8 { return t.data }

// Clone returns a deep copy.
func (t *QTensor) Clone() *QTensor {
	d := make([]int8, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &QTensor{shape: s, data: d, P: t.P}
}

// QuantizeInto quantizes the float tensor x into dst (same element
// count, dst's parameters) and returns dst.
func QuantizeInto(dst *QTensor, x *Tensor) (*QTensor, error) {
	if len(dst.data) != len(x.data) {
		return nil, fmt.Errorf("%w: quantize %v into %v", ErrShape, x.shape, dst.shape)
	}
	p := dst.P
	for i, v := range x.data {
		dst.data[i] = p.Quantize(v)
	}
	return dst, nil
}

// Quantize returns x quantized under the given parameters, with x's
// shape.
func Quantize(x *Tensor, p QParams) *QTensor {
	out := NewQ(p, x.shape...)
	out, _ = QuantizeInto(out, x) // sizes match by construction
	return out
}

// DequantizeInto writes the real values of t into dst (same element
// count) and returns dst.
func (t *QTensor) DequantizeInto(dst *Tensor) (*Tensor, error) {
	if len(dst.data) != len(t.data) {
		return nil, fmt.Errorf("%w: dequantize %v into %v", ErrShape, t.shape, dst.shape)
	}
	p := t.P
	for i, q := range t.data {
		dst.data[i] = p.Dequantize(q)
	}
	return dst, nil
}

// Dequantize returns the real-valued tensor of t.
func (t *QTensor) Dequantize() *Tensor {
	out := New(t.shape...)
	out, _ = t.DequantizeInto(out)
	return out
}

// QLut builds the 256-entry int8→int8 table applying the real-domain
// transform f between the input and output quantization domains
// (f == nil is the identity). Because an int8 tensor has only 256
// distinct values, any scalar elementwise operator — activation, clip,
// scale, requantization — compiles to one table lookup per element.
func QLut(in, out QParams, f func(float32) float32) *[256]int8 {
	var lut [256]int8
	for i := range lut {
		v := in.Dequantize(int8(i - 128))
		if f != nil {
			v = f(v)
		}
		lut[i] = out.Quantize(v)
	}
	return &lut
}

// LutIndex returns the table index of a stored int8 value.
func LutIndex(q int8) int { return int(q) + 128 }

// QScratch recycles the int8 and int32 temporary buffers of quantized
// kernels (im2col patch matrices, GEMM accumulators) across runs.
type QScratch struct {
	i8  [][]int8
	i32 [][]int32
	n8  int
	n32 int
}

// Reset makes all buffers reusable; previously returned slices are
// invalidated.
func (s *QScratch) Reset() { s.n8, s.n32 = 0, 0 }

// Int8 returns a recycled int8 buffer of length n (contents arbitrary).
func (s *QScratch) Int8(n int) []int8 {
	if s.n8 == len(s.i8) {
		s.i8 = append(s.i8, make([]int8, n))
	}
	b := s.i8[s.n8]
	if cap(b) < n {
		b = make([]int8, n)
		s.i8[s.n8] = b
	}
	s.n8++
	return b[:n]
}

// Int32 returns a recycled int32 buffer of length n (contents arbitrary).
func (s *QScratch) Int32(n int) []int32 {
	if s.n32 == len(s.i32) {
		s.i32 = append(s.i32, make([]int32, n))
	}
	b := s.i32[s.n32]
	if cap(b) < n {
		b = make([]int32, n)
		s.i32[s.n32] = b
	}
	s.n32++
	return b[:n]
}
