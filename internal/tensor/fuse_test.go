package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// applyUnfused is the reference semantics: each stage as its own full
// pass, exactly like the unfused operators execute.
func applyUnfused(stages []Stage, d []float32) {
	for _, st := range stages {
		for i, v := range d {
			switch st.Kind {
			case StageBias:
				v += st.Vec[i%st.C]
			case StageRelu:
				if !(v > 0) { // unfused ReLU: NaN and -0.0 map to +0
					v = 0
				}
			case StageMap:
				v = st.F(v)
			case StageClamp:
				if v < st.Lo {
					v = st.Lo
				} else if v > st.Hi {
					v = st.Hi
				}
			case StageScale:
				v *= st.A
			}
			d[i] = v
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	d := make([]float32, n)
	for i := range d {
		d[i] = float32(rng.NormFloat64() * 3)
	}
	// Special values must round-trip bit-identically too: NaN, ±Inf,
	// and negative zero all have defined behavior in the unfused kernels.
	if n >= 4 {
		d[0] = float32(math.NaN())
		d[1] = float32(math.Inf(1))
		d[2] = float32(math.Inf(-1))
		d[3] = float32(math.Copysign(0, -1))
	}
	return d
}

// TestEpilogueMatchesUnfusedPasses pins the fused single-pass kernel
// bit-identical to sequential per-stage passes for every chain shape the
// compiler produces, including the specialized bias/relu/clamp path and
// the generic fallback.
func TestEpilogueMatchesUnfusedPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bias := randSlice(rng, 4)
	tanh := func(x float32) float32 { return float32(math.Tanh(float64(x))) }
	chains := map[string][]Stage{
		"bias":            {{Kind: StageBias, Vec: bias, C: 4}},
		"relu":            {{Kind: StageRelu}},
		"clamp":           {{Kind: StageClamp, Lo: -0.5, Hi: 1.25}},
		"bias+relu":       {{Kind: StageBias, Vec: bias, C: 4}, {Kind: StageRelu}},
		"bias+relu+clamp": {{Kind: StageBias, Vec: bias, C: 4}, {Kind: StageRelu}, {Kind: StageClamp, Lo: 0, Hi: 1}},
		"relu+clamp":      {{Kind: StageRelu}, {Kind: StageClamp, Lo: 0.1, Hi: 2}},
		"bias+clamp":      {{Kind: StageBias, Vec: bias, C: 4}, {Kind: StageClamp, Lo: -1, Hi: 1}},
		"bias+tanh+clamp": {{Kind: StageBias, Vec: bias, C: 4}, {Kind: StageMap, F: tanh}, {Kind: StageClamp, Lo: -0.9, Hi: 0.9}},
		"map+scale":       {{Kind: StageMap, F: tanh}, {Kind: StageScale, A: 2}},
		"scale":           {{Kind: StageScale, A: -1.5}},
	}
	for name, stages := range chains {
		data := randSlice(rng, 64)
		want := append([]float32{}, data...)
		applyUnfused(stages, want)
		Epilogue(stages).Apply(data)
		for i := range data {
			if math.Float32bits(data[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%s: element %d: fused %g != unfused %g", name, i, data[i], want[i])
			}
		}
	}
}

// TestEpilogueCanonicalDetection checks that only in-order
// bias→relu→clamp subsequences take the specialized path.
func TestEpilogueCanonicalDetection(t *testing.T) {
	bias := []float32{1, 2}
	canonChains := [][]Stage{
		{{Kind: StageBias, Vec: bias, C: 2}},
		{{Kind: StageRelu}, {Kind: StageClamp, Lo: 0, Hi: 1}},
		{{Kind: StageBias, Vec: bias, C: 2}, {Kind: StageRelu}, {Kind: StageClamp, Lo: 0, Hi: 1}},
	}
	for i, c := range canonChains {
		if _, ok := Epilogue(c).canonical(); !ok {
			t.Errorf("chain %d: expected canonical", i)
		}
	}
	nonCanon := [][]Stage{
		{{Kind: StageClamp, Lo: 0, Hi: 1}, {Kind: StageRelu}},           // out of order
		{{Kind: StageMap, F: func(v float32) float32 { return v }}},     // generic stage
		{{Kind: StageRelu}, {Kind: StageBias, Vec: bias, C: 2}},         // bias after relu
		{{Kind: StageScale, A: 2}, {Kind: StageClamp, Lo: 0, Hi: 1}},    // scale not canonical
		{{Kind: StageRelu}, {Kind: StageRelu}, {Kind: StageBias, C: 2}}, // repeat + late bias
	}
	for i, c := range nonCanon {
		if _, ok := Epilogue(c).canonical(); ok {
			t.Errorf("chain %d: expected generic fallback", i)
		}
	}
}

func TestEpilogueEmptyIsNoop(t *testing.T) {
	d := []float32{1, -2, 3}
	Epilogue(nil).Apply(d)
	if d[0] != 1 || d[1] != -2 || d[2] != 3 {
		t.Fatalf("empty epilogue mutated data: %v", d)
	}
}
