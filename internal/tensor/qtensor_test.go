package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestQParamsForCoversRangeAndZero(t *testing.T) {
	cases := []struct{ lo, hi float64 }{
		{-3, 5}, {0, 10}, {-7, 0}, {0.5, 2}, {-2, -0.25}, {-1e-4, 1e-4},
	}
	for _, c := range cases {
		p := QParamsFor(c.lo, c.hi)
		if p.Scale <= 0 {
			t.Fatalf("QParamsFor(%g,%g): scale %g", c.lo, c.hi, p.Scale)
		}
		if p.Zero < -128 || p.Zero > 127 {
			t.Fatalf("QParamsFor(%g,%g): zero %d out of int8", c.lo, c.hi, p.Zero)
		}
		// Real zero must be exactly representable.
		if got := p.Dequantize(int8(p.Zero)); got != 0 {
			t.Fatalf("QParamsFor(%g,%g): zero point dequantizes to %g", c.lo, c.hi, got)
		}
		// Values inside the range round-trip within half a step.
		for _, v := range []float64{c.lo, c.hi, (c.lo + c.hi) / 2} {
			vv := float32(v)
			back := p.Dequantize(p.Quantize(vv))
			if math.Abs(float64(back-vv)) > float64(p.Scale)*0.51+1e-7 {
				t.Fatalf("QParamsFor(%g,%g): %g -> %g (scale %g)", c.lo, c.hi, vv, back, p.Scale)
			}
		}
	}
}

func TestQParamsDegenerate(t *testing.T) {
	for _, p := range []QParams{
		QParamsFor(0, 0),
		QParamsFor(math.Inf(-1), math.Inf(1)),
		QParamsFor(math.NaN(), 1),
		QParamsSymmetric(0),
	} {
		if p.Scale != 1 || p.Zero != 0 {
			t.Fatalf("degenerate params = %+v, want {1 0}", p)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	p := QParamsFor(-1, 1)
	if q := p.Quantize(100); q != 127 {
		t.Fatalf("over-range quantized to %d", q)
	}
	if q := p.Quantize(-100); q != -128 {
		t.Fatalf("under-range quantized to %d", q)
	}
	if q := p.Quantize(float32(math.NaN())); q != -128 {
		t.Fatalf("NaN quantized to %d", q)
	}
}

func TestQLutIdentity(t *testing.T) {
	p := QParamsFor(-2, 2)
	lut := QLut(p, p, nil)
	for i := range lut {
		if got, want := lut[i], int8(i-128); got != want {
			t.Fatalf("identity lut[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestQMatMulMatchesFloat checks the int8 GEMM against the float
// product of the dequantized operands: with exact int32 accumulation
// the only error is the operands' own quantization noise.
func TestQMatMulMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 5, 17, 9
	af := New(m, k).Randn(rng, 1)
	wf := New(k, n).Randn(rng, 0.5)
	pa := QParamsFor(float64(af.Min()), float64(af.Max()))
	maxW := math.Max(math.Abs(float64(wf.Min())), float64(wf.Max()))
	pw := QParamsSymmetric(maxW)
	aq := Quantize(af, pa)
	wq := Quantize(wf, pw)

	// Reference: float matmul of the dequantized int8 operands.
	ref, err := MatMul(aq.Dequantize(), wq.Dequantize())
	if err != nil {
		t.Fatal(err)
	}
	po := QParamsFor(float64(ref.Min()), float64(ref.Max()))

	// Int8 GEMM: the accumulator is already zero-point-corrected.
	out := make([]int8, m*n)
	err = QMatMul(aq.Data(), pa.Zero, m, k, wq.Data(), n, out, func(acc []int32, outRow []int8) {
		for j, a := range acc {
			real32 := float32(a) * pa.Scale * pw.Scale
			outRow[j] = po.Quantize(real32)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		got := po.Dequantize(out[i])
		want := ref.Data()[i]
		if math.Abs(float64(got-want)) > float64(po.Scale)*0.51+1e-6 {
			t.Fatalf("element %d: int8 %g vs float %g (step %g)", i, got, want, po.Scale)
		}
	}
}

// TestQMatMulDeterministicAcrossWorkers pins bit-identical outputs at
// every worker count (trivially true for integer accumulation, but the
// sharding must not misroute rows).
func TestQMatMulDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 33, 40, 21
	a := make([]int8, m*k)
	w := make([]int8, k*n)
	for i := range a {
		a[i] = int8(rng.Intn(256) - 128)
	}
	for i := range w {
		w[i] = int8(rng.Intn(256) - 128)
	}
	requant := func(acc []int32, outRow []int8) {
		for j, v := range acc {
			outRow[j] = int8(v >> 8)
		}
	}
	run := func() []int8 {
		out := make([]int8, m*n)
		if err := QMatMul(a, -3, m, k, w, n, out, requant); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run()
	for i := 0; i < 3; i++ {
		got := run()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: element %d differs", i, j)
			}
		}
	}
}

func TestQIm2ColPadsWithZeroPoint(t *testing.T) {
	p := QParamsFor(-1, 1)
	x := NewQ(p, 1, 2, 2, 1)
	for i, v := range []int8{10, 20, 30, 40} {
		x.Data()[i] = v
	}
	g := ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}
	rows := 2 * 2
	rowLen := 9
	dst := make([]int8, rows*rowLen)
	pad := int8(p.Zero)
	if err := QIm2ColInto(dst, x, g, pad); err != nil {
		t.Fatal(err)
	}
	// Top-left output position: only the bottom-right 2x2 of the window
	// is in bounds.
	want := []int8{pad, pad, pad, pad, 10, 20, pad, 30, 40}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("row 0 tap %d = %d, want %d", i, dst[i], w)
		}
	}
}

func TestQScratchRecycles(t *testing.T) {
	var s QScratch
	b1 := s.Int8(16)
	w1 := s.Int32(8)
	s.Reset()
	b2 := s.Int8(10)
	w2 := s.Int32(4)
	if &b1[0] != &b2[0] || &w1[0] != &w2[0] {
		t.Fatal("scratch did not recycle buffers")
	}
}

// FuzzQParamsRoundTrip checks, for arbitrary calibration ranges and
// values, that quantization stays in-range, round-trips within half a
// step for in-range values, and is idempotent.
func FuzzQParamsRoundTrip(f *testing.F) {
	f.Add(-3.0, 5.0, 1.25)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-1e9, 1e9, 123456.0)
	f.Fuzz(func(t *testing.T, lo, hi, v float64) {
		p := QParamsFor(lo, hi)
		if p.Scale <= 0 || p.Zero < -128 || p.Zero > 127 {
			t.Fatalf("invalid params %+v for [%g,%g]", p, lo, hi)
		}
		q := p.Quantize(float32(v))
		back := p.Dequantize(q)
		// Idempotence: re-quantizing a representable value is exact.
		if p.Quantize(back) != q {
			t.Fatalf("requantize(%g) = %d, first pass %d", back, p.Quantize(back), q)
		}
		// In-range finite values round-trip within half a step.
		if !math.IsNaN(v) && !math.IsInf(v, 0) && lo <= hi && v >= lo && v <= hi {
			limit := float64(p.Scale)*0.5 + math.Abs(v)*1e-5 + 1e-6
			if diff := math.Abs(float64(back) - float64(float32(v))); diff > limit {
				t.Fatalf("round trip [%g,%g]: %g -> %d -> %g (err %g > %g)", lo, hi, v, q, back, diff, limit)
			}
		}
	})
}
