package tensor

import (
	"math/rand"
	"testing"
)

// naiveConv is a direct convolution reference implementation used to
// validate the im2col lowering.
func naiveConv(x *Tensor, w *Tensor, g ConvGeom) *Tensor {
	n, h, wd, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outC := w.Dim(3)
	oh, ow := g.OutDims(h, wd)
	out := New(n, oh, ow, outC)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < outC; oc++ {
					var sum float32
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.SH - g.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.SW - g.PadW + kx
							if ix < 0 || ix >= wd {
								continue
							}
							for ic := 0; ic < c; ic++ {
								sum += x.At(b, iy, ix, ic) * w.At(ky, kx, ic, oc)
							}
						}
					}
					out.Set(sum, b, oy, ox, oc)
				}
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []ConvGeom{
		{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1},
		{KH: 3, KW: 3, SH: 2, SW: 2, PadH: 1, PadW: 1},
		{KH: 1, KW: 1, SH: 1, SW: 1},
		{KH: 5, KW: 5, SH: 1, SW: 1, PadH: 2, PadW: 2},
		{KH: 2, KW: 2, SH: 2, SW: 2},
	}
	for _, g := range cases {
		x := New(2, 8, 8, 3).Randn(rng, 1)
		w := New(g.KH, g.KW, 3, 4).Randn(rng, 1)
		cols, err := Im2Col(x, g)
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
		wm, _ := w.Reshape(g.KH*g.KW*3, 4)
		prod, err := MatMul(cols, wm)
		if err != nil {
			t.Fatal(err)
		}
		oh, ow := g.OutDims(8, 8)
		got, _ := prod.Reshape(2, oh, ow, 4)
		want := naiveConv(x, w, g)
		if !got.SameShape(want) {
			t.Fatalf("%+v: shape %v vs %v", g, got.Shape(), want.Shape())
		}
		for i := range want.Data() {
			if !almostEq(got.Data()[i], want.Data()[i], 1e-3) {
				t.Fatalf("%+v: element %d = %v, want %v", g, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. for any x and y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the condition that
// makes the convolution backward pass correct.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PadH: 1, PadW: 1}
	for trial := 0; trial < 10; trial++ {
		x := New(1, 7, 7, 2).Randn(rng, 1)
		cols, err := Im2Col(x, g)
		if err != nil {
			t.Fatal(err)
		}
		y := New(cols.Shape()...).Randn(rng, 1)
		back, err := Col2Im(y, x.Shape(), g)
		if err != nil {
			t.Fatal(err)
		}
		var lhs, rhs float64
		for i := range cols.Data() {
			lhs += float64(cols.Data()[i]) * float64(y.Data()[i])
		}
		for i := range x.Data() {
			rhs += float64(x.Data()[i]) * float64(back.Data()[i])
		}
		if d := lhs - rhs; d > 1e-2 || d < -1e-2 {
			t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
		}
	}
}

func TestIm2ColErrors(t *testing.T) {
	g := ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1}
	if _, err := Im2Col(New(3, 3), g); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := Im2Col(New(1, 2, 2, 1), g); err == nil {
		t.Fatal("want empty-output error: 3x3 kernel on 2x2 input, no pad")
	}
	if _, err := Col2Im(New(5, 5), []int{1, 4, 4, 1}, g); err == nil {
		t.Fatal("want cols shape error")
	}
}

func TestConvGeomOutDims(t *testing.T) {
	g := ConvGeom{KH: 3, KW: 3, SH: 1, SW: 1, PadH: 1, PadW: 1}
	if oh, ow := g.OutDims(32, 32); oh != 32 || ow != 32 {
		t.Fatalf("same-pad stride-1 = %dx%d, want 32x32", oh, ow)
	}
	g2 := ConvGeom{KH: 2, KW: 2, SH: 2, SW: 2}
	if oh, ow := g2.OutDims(32, 32); oh != 16 || ow != 16 {
		t.Fatalf("2x2/2 pool = %dx%d, want 16x16", oh, ow)
	}
	if SamePad(3) != 1 || SamePad(5) != 2 || SamePad(1) != 0 {
		t.Fatal("SamePad wrong")
	}
}
