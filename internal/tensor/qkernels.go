package tensor

import (
	"fmt"
	"sync"

	"ranger/internal/parallel"
)

// Int8 compute kernels. QMatMul is the quantized counterpart of the
// float32 matmul: int8 operands, int32 accumulation, and a caller-
// supplied requantization epilogue that collapses zero-point correction,
// bias, activation, and Ranger's range restriction into the single pass
// that writes each output row back to int8. QIm2ColInto lowers int8 NHWC
// inputs to patch rows so quantized convolution reuses the same GEMM.

// QMatMul multiplies the (m,k) int8 matrix a by the (k,n) int8 matrix w,
// accumulating acc[j] = Σ_p (a[p]-za)·w[p,j] in int32 and handing each
// row to requant, which must write the row's int8 outputs into outRow.
// Subtracting the zero point inside the loop (rather than correcting
// with a per-column weight sum afterwards) lets the kernel skip
// zero-valued operands exactly like the float kernels skip post-ReLU
// zeros — the raw byte for real 0.0 is za, not 0. The per-term product
// fits int32 for any reduction below ~65k taps, far past the zoo.
// Rows are sharded across workers; integer accumulation makes results
// identical at every worker count by construction.
func QMatMul(a []int8, za int32, m, k int, w []int8, n int, out []int8, requant func(acc []int32, outRow []int8)) error {
	if len(a) < m*k || len(w) < k*n || len(out) < m*n {
		return fmt.Errorf("%w: qmatmul (%d,%d)x(%d,%d) over %d/%d/%d elements",
			ErrShape, m, k, k, n, len(a), len(w), len(out))
	}
	parallel.Shard(kernelWorkers(m*k*n), m, func(lo, hi int) {
		acc := make([]int32, n)
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			clear(acc)
			if n <= blockN {
				for p := 0; p < k; p++ {
					av := int32(arow[p]) - za
					if av == 0 {
						continue
					}
					wrow := w[p*n : (p+1)*n]
					for j, wv := range wrow {
						acc[j] += av * int32(wv)
					}
				}
			} else {
				for p0 := 0; p0 < k; p0 += blockK {
					p1 := min(p0+blockK, k)
					for j0 := 0; j0 < n; j0 += blockN {
						j1 := min(j0+blockN, n)
						ab := acc[j0:j1]
						for p := p0; p < p1; p++ {
							av := int32(arow[p]) - za
							if av == 0 {
								continue
							}
							wrow := w[p*n+j0 : p*n+j1]
							for j, wv := range wrow {
								ab[j] += av * int32(wv)
							}
						}
					}
				}
			}
			requant(acc, out[i*n:(i+1)*n])
		}
	})
	return nil
}

// qpanelPool recycles int8 panel buffers for the parallel packed paths.
var qpanelPool = sync.Pool{New: func() any { return make([]int8, PackPanelLen) }}

// qmatmulPanels accumulates the packed int8 GEMM for output rows
// [lo, hi) and columns [jw0, jw1) into the int32 accumulator matrix acc
// (row stride n): each weight panel block is packed once and reused
// across every row — the int8 mirror of matmulPanels. Accumulation is
// exact integer arithmetic, so results are identical to QMatMul's by
// construction.
func qmatmulPanels(a []int8, za int32, w []int8, acc []int32, k, n, lo, hi, jw0, jw1 int, pack []int8) {
	for j0 := jw0; j0 < jw1; j0 += blockN {
		j1 := min(j0+blockN, jw1)
		width := j1 - j0
		for i := lo; i < hi; i++ {
			clear(acc[i*n+j0 : i*n+j1])
		}
		for p0 := 0; p0 < k; p0 += blockK {
			p1 := min(p0+blockK, k)
			for p := p0; p < p1; p++ {
				copy(pack[(p-p0)*width:(p-p0+1)*width], w[p*n+j0:p*n+j1])
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				ab := acc[i*n+j0 : i*n+j1]
				for p := p0; p < p1; p++ {
					av := int32(arow[p]) - za
					if av == 0 {
						continue
					}
					wrow := pack[(p-p0)*width : (p-p0)*width+width]
					for j, wv := range wrow {
						ab[j] += av * int32(wv)
					}
				}
			}
		}
	}
}

// QMatMulPack is the panel-packed, lane-batched form of QMatMul: weight
// panel blocks are copied once into a contiguous buffer and reused
// across all m rows (the B batched lanes, or a whole batch's im2col
// patch rows), accumulating in int32 and requantizing per row exactly
// like QMatMul. tmp, when non-nil, provides the accumulator matrix and
// panel storage so steady-state calls allocate nothing. Integer
// accumulation makes the results identical to QMatMul at every worker
// count; below PackMinRows rows the call delegates to QMatMul.
func QMatMulPack(a []int8, za int32, m, k int, w []int8, n int, out []int8, requant func(acc []int32, outRow []int8), tmp *QScratch) error {
	if m < PackMinRows {
		return QMatMul(a, za, m, k, w, n, out, requant)
	}
	if len(a) < m*k || len(w) < k*n || len(out) < m*n {
		return fmt.Errorf("%w: qmatmul (%d,%d)x(%d,%d) over %d/%d/%d elements",
			ErrShape, m, k, k, n, len(a), len(w), len(out))
	}
	var acc []int32
	var pack []int8
	if tmp != nil {
		acc, pack = tmp.Int32(m*n), tmp.Int8(PackPanelLen)
	} else {
		acc, pack = make([]int32, m*n), make([]int8, PackPanelLen)
	}
	workers := kernelWorkers(m * k * n)
	switch {
	case workers <= 1:
		qmatmulPanels(a, za, w, acc, k, n, 0, m, 0, n, pack)
	case (n+blockN-1)/blockN >= workers:
		parallel.Shard(workers, (n+blockN-1)/blockN, func(b0, b1 int) {
			wp := qpanelPool.Get().([]int8)
			qmatmulPanels(a, za, w, acc, k, n, 0, m, b0*blockN, min(b1*blockN, n), wp)
			qpanelPool.Put(wp)
		})
	default:
		parallel.Shard(workers, m, func(lo, hi int) {
			wp := qpanelPool.Get().([]int8)
			qmatmulPanels(a, za, w, acc, k, n, lo, hi, 0, n, wp)
			qpanelPool.Put(wp)
		})
	}
	if workers <= 1 {
		for i := 0; i < m; i++ {
			requant(acc[i*n:(i+1)*n], out[i*n:(i+1)*n])
		}
		return nil
	}
	parallel.Shard(workers, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			requant(acc[i*n:(i+1)*n], out[i*n:(i+1)*n])
		}
	})
	return nil
}

// QIm2ColInto lowers an int8 NHWC tensor into patch rows of length
// KH*KW*C in dst (which must hold N*OH*OW rows). Padding taps are filled
// with pad — the input's zero point, so padded positions dequantize to
// exactly 0.0 like the float kernel's zero padding.
func QIm2ColInto(dst []int8, x *QTensor, g ConvGeom, pad int8) error {
	if x.Rank() != 4 {
		return fmt.Errorf("%w: qim2col wants NHWC, got %v", ErrShape, x.shape)
	}
	n, h, w, c := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: qim2col output %dx%d for input %v geom %+v", ErrShape, oh, ow, x.shape, g)
	}
	rowLen := g.KH * g.KW * c
	rows := n * oh * ow
	if len(dst) < rows*rowLen {
		return fmt.Errorf("%w: qim2col dst %d elements, want %d", ErrShape, len(dst), rows*rowLen)
	}
	xd := x.data
	parallel.Shard(kernelWorkers(rows*rowLen), rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / (oh * ow)
			oy := r / ow % oh
			ox := r % ow
			row := r * rowLen
			for i := row; i < row+rowLen; i++ {
				dst[i] = pad
			}
			for ky := 0; ky < g.KH; ky++ {
				iy := oy*g.SH - g.PadH + ky
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < g.KW; kx++ {
					ix := ox*g.SW - g.PadW + kx
					if ix < 0 || ix >= w {
						continue
					}
					src := ((b*h+iy)*w + ix) * c
					d := row + (ky*g.KW+kx)*c
					copy(dst[d:d+c], xd[src:src+c])
				}
			}
		}
	})
	return nil
}
