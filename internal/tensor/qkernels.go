package tensor

import (
	"fmt"

	"ranger/internal/parallel"
)

// Int8 compute kernels. QMatMul is the quantized counterpart of the
// float32 matmul: int8 operands, int32 accumulation, and a caller-
// supplied requantization epilogue that collapses zero-point correction,
// bias, activation, and Ranger's range restriction into the single pass
// that writes each output row back to int8. QIm2ColInto lowers int8 NHWC
// inputs to patch rows so quantized convolution reuses the same GEMM.

// QMatMul multiplies the (m,k) int8 matrix a by the (k,n) int8 matrix w,
// accumulating acc[j] = Σ_p (a[p]-za)·w[p,j] in int32 and handing each
// row to requant, which must write the row's int8 outputs into outRow.
// Subtracting the zero point inside the loop (rather than correcting
// with a per-column weight sum afterwards) lets the kernel skip
// zero-valued operands exactly like the float kernels skip post-ReLU
// zeros — the raw byte for real 0.0 is za, not 0. The per-term product
// fits int32 for any reduction below ~65k taps, far past the zoo.
// Rows are sharded across workers; integer accumulation makes results
// identical at every worker count by construction.
func QMatMul(a []int8, za int32, m, k int, w []int8, n int, out []int8, requant func(acc []int32, outRow []int8)) error {
	if len(a) < m*k || len(w) < k*n || len(out) < m*n {
		return fmt.Errorf("%w: qmatmul (%d,%d)x(%d,%d) over %d/%d/%d elements",
			ErrShape, m, k, k, n, len(a), len(w), len(out))
	}
	parallel.Shard(kernelWorkers(m*k*n), m, func(lo, hi int) {
		acc := make([]int32, n)
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			clear(acc)
			if n <= blockN {
				for p := 0; p < k; p++ {
					av := int32(arow[p]) - za
					if av == 0 {
						continue
					}
					wrow := w[p*n : (p+1)*n]
					for j, wv := range wrow {
						acc[j] += av * int32(wv)
					}
				}
			} else {
				for p0 := 0; p0 < k; p0 += blockK {
					p1 := min(p0+blockK, k)
					for j0 := 0; j0 < n; j0 += blockN {
						j1 := min(j0+blockN, n)
						ab := acc[j0:j1]
						for p := p0; p < p1; p++ {
							av := int32(arow[p]) - za
							if av == 0 {
								continue
							}
							wrow := w[p*n+j0 : p*n+j1]
							for j, wv := range wrow {
								ab[j] += av * int32(wv)
							}
						}
					}
				}
			}
			requant(acc, out[i*n:(i+1)*n])
		}
	})
	return nil
}

// QIm2ColInto lowers an int8 NHWC tensor into patch rows of length
// KH*KW*C in dst (which must hold N*OH*OW rows). Padding taps are filled
// with pad — the input's zero point, so padded positions dequantize to
// exactly 0.0 like the float kernel's zero padding.
func QIm2ColInto(dst []int8, x *QTensor, g ConvGeom, pad int8) error {
	if x.Rank() != 4 {
		return fmt.Errorf("%w: qim2col wants NHWC, got %v", ErrShape, x.shape)
	}
	n, h, w, c := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := g.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: qim2col output %dx%d for input %v geom %+v", ErrShape, oh, ow, x.shape, g)
	}
	rowLen := g.KH * g.KW * c
	rows := n * oh * ow
	if len(dst) < rows*rowLen {
		return fmt.Errorf("%w: qim2col dst %d elements, want %d", ErrShape, len(dst), rows*rowLen)
	}
	xd := x.data
	parallel.Shard(kernelWorkers(rows*rowLen), rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			b := r / (oh * ow)
			oy := r / ow % oh
			ox := r % ow
			row := r * rowLen
			for i := row; i < row+rowLen; i++ {
				dst[i] = pad
			}
			for ky := 0; ky < g.KH; ky++ {
				iy := oy*g.SH - g.PadH + ky
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < g.KW; kx++ {
					ix := ox*g.SW - g.PadW + kx
					if ix < 0 || ix >= w {
						continue
					}
					src := ((b*h+iy)*w + ix) * c
					d := row + (ky*g.KW+kx)*c
					copy(dst[d:d+c], xd[src:src+c])
				}
			}
		}
	})
	return nil
}
