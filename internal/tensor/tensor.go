// Package tensor provides a dense float32 n-dimensional tensor and the
// numeric kernels (matmul, im2col, pooling windows, elementwise maps) that
// the operator layer builds on. It is deliberately small: just enough to
// run and train the convolutional networks evaluated in the Ranger paper.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense float32 tensor in row-major order. The zero value is
// not usable; construct with New, FromSlice, or the Random helpers.
type Tensor struct {
	shape []int
	data  []float32
}

// ErrShape reports a shape mismatch between operands.
var ErrShape = errors.New("tensor: shape mismatch")

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative; a zero-dimensional tensor holds one scalar.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d elements for shape %v (%d)", ErrShape, len(data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice but panics on error; for literals in tests.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Scalar returns a 0-d tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: nil, data: []float32{v}}
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; this is
// the intended access path for kernels and the fault injector.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{shape: s, data: d}
}

// ResolveShape resolves a requested shape against an element count: a
// single -1 dimension is inferred, negative dimensions are rejected,
// and the resolved shape's element count must equal total. It is the
// single definition of reshape semantics, shared by Tensor.Reshape and
// compile-time shape inference.
func ResolveShape(total int, shape []int) ([]int, error) {
	s := make([]int, len(shape))
	copy(s, shape)
	infer := -1
	known := 1
	for i, d := range s {
		switch {
		case d == -1:
			if infer >= 0 {
				return nil, fmt.Errorf("%w: multiple -1 dims in %v", ErrShape, shape)
			}
			infer = i
		case d < 0:
			return nil, fmt.Errorf("%w: negative dim in %v", ErrShape, shape)
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || total%known != 0 {
			return nil, fmt.Errorf("%w: cannot infer dim for %v from %d elements", ErrShape, shape, total)
		}
		s[infer] = total / known
		known *= s[infer]
	}
	if known != total {
		return nil, fmt.Errorf("%w: reshape %d elements to %v", ErrShape, total, shape)
	}
	return s, nil
}

// Reshape returns a view-copy of t with a new shape holding the same
// elements. A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	s, err := ResolveShape(len(t.data), shape)
	if err != nil {
		return nil, err
	}
	return &Tensor{shape: s, data: t.data}, nil
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply maps f over every element in place and returns t.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied to every element.
func (t *Tensor) Map(f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// AddInto computes dst = t + u elementwise. Shapes must match exactly.
func (t *Tensor) AddInto(u, dst *Tensor) error {
	if !t.SameShape(u) || !t.SameShape(dst) {
		return fmt.Errorf("%w: add %v + %v -> %v", ErrShape, t.shape, u.shape, dst.shape)
	}
	for i := range t.data {
		dst.data[i] = t.data[i] + u.data[i]
	}
	return nil
}

// Add returns t + u elementwise.
func (t *Tensor) Add(u *Tensor) (*Tensor, error) {
	out := New(t.shape...)
	if err := t.AddInto(u, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Sub returns t - u elementwise.
func (t *Tensor) Sub(u *Tensor) (*Tensor, error) {
	if !t.SameShape(u) {
		return nil, fmt.Errorf("%w: sub %v - %v", ErrShape, t.shape, u.shape)
	}
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] - u.data[i]
	}
	return out, nil
}

// Mul returns t * u elementwise (Hadamard product).
func (t *Tensor) Mul(u *Tensor) (*Tensor, error) {
	if !t.SameShape(u) {
		return nil, fmt.Errorf("%w: mul %v * %v", ErrShape, t.shape, u.shape)
	}
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * u.data[i]
	}
	return out, nil
}

// Scale returns t * a for scalar a.
func (t *Tensor) Scale(a float32) *Tensor {
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * a
	}
	return out
}

// AxpyInPlace computes t += a*u in place.
func (t *Tensor) AxpyInPlace(a float32, u *Tensor) error {
	if !t.SameShape(u) {
		return fmt.Errorf("%w: axpy %v += a*%v", ErrShape, t.shape, u.shape)
	}
	for i := range t.data {
		t.data[i] += a * u.data[i]
	}
	return nil
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return float32(s)
}

// Max returns the maximum element; -Inf for an empty tensor.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; +Inf for an empty tensor.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// TopK returns the flat indices of the k largest elements, best first.
func (t *Tensor) TopK(k int) []int {
	if k > len(t.data) {
		k = len(t.data)
	}
	idx := make([]int, 0, k)
	taken := make(map[int]bool, k)
	for range make([]struct{}, k) {
		best, bi := float32(math.Inf(-1)), -1
		for i, v := range t.data {
			if !taken[i] && v > best {
				best, bi = v, i
			}
		}
		taken[bi] = true
		idx = append(idx, bi)
	}
	return idx
}

// Clamp limits every element into [lo, hi] in place and returns t.
func (t *Tensor) Clamp(lo, hi float32) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// Randn fills t with N(0, std) samples from rng and returns t.
func (t *Tensor) Randn(rng *rand.Rand, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform fills t with U[lo, hi) samples from rng and returns t.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// String renders shape plus a preview of the first few elements.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		fmt.Fprintf(&b, " ... (%d total)", len(t.data))
	}
	b.WriteString("]")
	return b.String()
}
