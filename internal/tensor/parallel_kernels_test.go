package tensor

import (
	"math/rand"
	"testing"

	"ranger/internal/parallel"
)

// refMatMul is the original sequential kernel, kept as the bit-exactness
// oracle for the blocked parallel implementation.
func refMatMul(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		// Include exact zeros to exercise the zero-skip path.
		if rng.Intn(8) == 0 {
			continue
		}
		t.data[i] = float32(rng.NormFloat64())
	}
	return t
}

// TestMatMulBitIdenticalAcrossWorkers locks in the determinism contract:
// the blocked kernels produce byte-identical results at every worker
// count, and match the sequential reference exactly.
func TestMatMulBitIdenticalAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(11))
	// Sizes straddle the parallel cutoff and the block boundaries.
	cases := [][3]int{{3, 5, 7}, {64, 64, 64}, {130, 257, 61}, {33, 600, 520}}
	for _, c := range cases {
		m, k, n := c[0], c[1], c[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := refMatMul(a, b)
		for _, workers := range []int{1, 2, 3, 8} {
			parallel.SetWorkers(workers)
			got, err := MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.data {
				if got.data[i] != want.data[i] {
					t.Fatalf("m=%d k=%d n=%d workers=%d: element %d = %v, want %v (bitwise)",
						m, k, n, workers, i, got.data[i], want.data[i])
				}
			}
		}
	}
}

func TestTransKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(12))
	k, m, n := 150, 70, 330
	a := randTensor(rng, k, m)  // for aᵀ·b
	a2 := randTensor(rng, m, k) // for a·bᵀ
	b := randTensor(rng, k, n)
	b2 := randTensor(rng, n, k)
	parallel.SetWorkers(1)
	wantA, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := MatMulTransB(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		parallel.SetWorkers(workers)
		gotA, err := MatMulTransA(a, b)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := MatMulTransB(a2, b2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantA.data {
			if gotA.data[i] != wantA.data[i] {
				t.Fatalf("transA workers=%d: element %d differs", workers, i)
			}
		}
		for i := range wantB.data {
			if gotB.data[i] != wantB.data[i] {
				t.Fatalf("transB workers=%d: element %d differs", workers, i)
			}
		}
	}
}

func TestMatMulIntoReusesDst(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	dst.Fill(99) // stale contents must be overwritten
	out, err := MatMulInto(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out != dst {
		t.Fatal("MatMulInto did not return dst")
	}
	want := []float32{19, 22, 43, 50}
	for i, v := range want {
		if out.data[i] != v {
			t.Fatalf("element %d = %v, want %v", i, out.data[i], v)
		}
	}
	if _, err := MatMulInto(New(3, 3), a, b); err == nil {
		t.Fatal("want dst shape error")
	}
}

func TestIm2ColIntoMatchesAlloc(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(13))
	x := randTensor(rng, 2, 9, 9, 3)
	g := ConvGeom{KH: 3, KW: 3, SH: 2, SW: 2, PadH: 1, PadW: 1}
	parallel.SetWorkers(1)
	want, err := Im2Col(x, g)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	dst := New(want.shape[0], want.shape[1])
	dst.Fill(-7) // stale data: padding taps must be re-zeroed
	got, err := Im2ColInto(dst, x, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.data {
		if got.data[i] != want.data[i] {
			t.Fatalf("element %d = %v, want %v", i, got.data[i], want.data[i])
		}
	}
}

// Benchmarks comparing the blocked worker-sharded kernel against the
// seed's sequential reference at a mid-size shape (the before/after
// numbers for the parallel-execution PR).
func BenchmarkMatMul256Blocked(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 256, 256)
	y := randTensor(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul256SeqRef(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 256, 256)
	y := randTensor(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refMatMul(x, y)
	}
}
