package data

import (
	"math"
	"testing"
)

func allDatasets() []Dataset {
	return []Dataset{NewDigits(), NewObjects10(), NewSigns(), NewImNet(), NewDriving(), NewDrivingRadians()}
}

func TestShapesAndLens(t *testing.T) {
	for _, ds := range allDatasets() {
		shape := ds.InputShape()
		if len(shape) != 3 {
			t.Fatalf("%s: shape %v", ds.Name(), shape)
		}
		if ds.Len(Train) <= 0 || ds.Len(Val) <= 0 {
			t.Fatalf("%s: empty split", ds.Name())
		}
		s := ds.Sample(Train, 0)
		want := []int{1, shape[0], shape[1], shape[2]}
		got := s.X.Shape()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sample shape %v, want %v", ds.Name(), got, want)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, ds := range allDatasets() {
		a := ds.Sample(Train, 7)
		b := ds.Sample(Train, 7)
		if a.Label != b.Label || a.Target != b.Target {
			t.Fatalf("%s: labels differ", ds.Name())
		}
		for i := range a.X.Data() {
			if a.X.Data()[i] != b.X.Data()[i] {
				t.Fatalf("%s: pixels differ at %d", ds.Name(), i)
			}
		}
	}
}

func TestSplitsDiffer(t *testing.T) {
	for _, ds := range allDatasets() {
		a := ds.Sample(Train, 3)
		b := ds.Sample(Val, 3)
		same := true
		for i := range a.X.Data() {
			if a.X.Data()[i] != b.X.Data()[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: train and val sample 3 identical", ds.Name())
		}
	}
}

func TestLabelsCoverAllClasses(t *testing.T) {
	for _, ds := range allDatasets() {
		if ds.NumClasses() == 0 {
			continue
		}
		seen := make(map[int]bool)
		for i := 0; i < ds.NumClasses()*2; i++ {
			s := ds.Sample(Train, i)
			if s.Label < 0 || s.Label >= ds.NumClasses() {
				t.Fatalf("%s: label %d out of range", ds.Name(), s.Label)
			}
			seen[s.Label] = true
		}
		if len(seen) != ds.NumClasses() {
			t.Fatalf("%s: saw %d/%d classes", ds.Name(), len(seen), ds.NumClasses())
		}
	}
}

func TestPixelValuesBounded(t *testing.T) {
	for _, ds := range allDatasets() {
		for i := 0; i < 5; i++ {
			s := ds.Sample(Train, i)
			for _, v := range s.X.Data() {
				if math.IsNaN(float64(v)) || v < -2 || v > 3 {
					t.Fatalf("%s: wild pixel %v", ds.Name(), v)
				}
			}
		}
	}
}

func TestDrivingTargetsInRange(t *testing.T) {
	deg := NewDriving()
	rad := NewDrivingRadians()
	var maxAbs float64
	for i := 0; i < 200; i++ {
		d := deg.Sample(Train, i).Target
		if math.Abs(float64(d)) > MaxAngleDeg {
			t.Fatalf("deg target %v out of range", d)
		}
		if a := math.Abs(float64(d)); a > maxAbs {
			maxAbs = a
		}
		r := rad.Sample(Train, i).Target
		if math.Abs(float64(r)) > math.Pi {
			t.Fatalf("rad target %v out of range", r)
		}
	}
	if maxAbs < 30 {
		t.Fatalf("driving targets suspiciously small; max |angle| = %v", maxAbs)
	}
}

func TestBatchAssembly(t *testing.T) {
	ds := NewDigits()
	x, labels, _ := Batch(ds, Train, []int{0, 1, 2})
	if x.Dim(0) != 3 || x.Dim(1) != 28 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if labels[1] != ds.Sample(Train, 1).Label {
		t.Fatal("labels misaligned")
	}
	// Batch row 2 must equal sample 2's pixels.
	s2 := ds.Sample(Train, 2)
	stride := 28 * 28
	for i := 0; i < stride; i++ {
		if x.Data()[2*stride+i] != s2.X.Data()[i] {
			t.Fatal("batch pixels misaligned")
		}
	}
}

func TestOneHot(t *testing.T) {
	oh := OneHot([]int{2, 0}, 3)
	want := []float32{0, 0, 1, 1, 0, 0}
	for i, w := range want {
		if oh.Data()[i] != w {
			t.Fatalf("onehot = %v", oh.Data())
		}
	}
}

func TestTargetTensor(t *testing.T) {
	tt := TargetTensor([]float32{1.5, -2})
	if tt.Dim(0) != 2 || tt.Dim(1) != 1 || tt.At(1, 0) != -2 {
		t.Fatalf("targets = %v %v", tt.Shape(), tt.Data())
	}
}

func TestSplitString(t *testing.T) {
	if Train.String() != "train" || Val.String() != "val" {
		t.Fatal("split strings")
	}
}

// Classes must be visually distinguishable: mean per-class images should
// differ pairwise by a margin, otherwise the models cannot learn and every
// downstream experiment degenerates.
func TestClassSeparation(t *testing.T) {
	for _, ds := range []Dataset{NewDigits(), NewObjects10(), NewSigns(), NewImNet()} {
		classes := ds.NumClasses()
		shape := ds.InputShape()
		size := shape[0] * shape[1] * shape[2]
		means := make([][]float64, classes)
		const perClass = 8
		for c := 0; c < classes; c++ {
			means[c] = make([]float64, size)
		}
		counts := make([]int, classes)
		for i := 0; i < classes*perClass; i++ {
			s := ds.Sample(Train, i)
			for j, v := range s.X.Data() {
				means[s.Label][j] += float64(v)
			}
			counts[s.Label]++
		}
		for c := range means {
			for j := range means[c] {
				means[c][j] /= float64(counts[c])
			}
		}
		for a := 0; a < classes; a++ {
			for b := a + 1; b < classes; b++ {
				var d2 float64
				for j := range means[a] {
					d := means[a][j] - means[b][j]
					d2 += d * d
				}
				if rms := math.Sqrt(d2 / float64(size)); rms < 0.01 {
					t.Fatalf("%s: classes %d and %d nearly identical (rms %v)", ds.Name(), a, b, rms)
				}
			}
		}
	}
}
