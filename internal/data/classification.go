package data

import (
	"math"
)

// Digits is the MNIST stand-in: 28x28 grayscale seven-segment-style digit
// glyphs with random position jitter, stroke thickness, and pixel noise.
type Digits struct {
	Seed             int64
	TrainLen, ValLen int
}

// NewDigits returns the default digits dataset.
func NewDigits() *Digits { return &Digits{Seed: 1001, TrainLen: 4000, ValLen: 800} }

// Name implements Dataset.
func (d *Digits) Name() string { return "digits" }

// InputShape implements Dataset.
func (d *Digits) InputShape() []int { return []int{28, 28, 1} }

// NumClasses implements Dataset.
func (d *Digits) NumClasses() int { return 10 }

// Len implements Dataset.
func (d *Digits) Len(split Split) int {
	if split == Train {
		return d.TrainLen
	}
	return d.ValLen
}

// segMask gives, per digit, the lit segments (top, top-left, top-right,
// middle, bottom-left, bottom-right, bottom) of a seven-segment display.
var segMask = [10][7]bool{
	{true, true, true, false, true, true, true},     // 0
	{false, false, true, false, false, true, false}, // 1
	{true, false, true, true, true, false, true},    // 2
	{true, false, true, true, false, true, true},    // 3
	{false, true, true, true, false, true, false},   // 4
	{true, true, false, true, false, true, true},    // 5
	{true, true, false, true, true, true, true},     // 6
	{true, false, true, false, false, true, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// Sample implements Dataset.
func (d *Digits) Sample(split Split, i int) Sample {
	rng := sampleRNG(d.Seed, split, i)
	label := i % 10
	cv := newCanvas(28, 28, 1)
	ink := []float32{float32(0.75 + rng.Float64()*0.25)}
	oy := 4 + rng.Intn(5) // glyph occupies ~18 rows, jittered
	ox := 8 + rng.Intn(7)
	th := 1 + rng.Intn(2)
	hgt, wid := 16, 10
	mid := oy + hgt/2
	segs := segMask[label]
	if segs[0] {
		cv.line(oy, ox, oy, ox+wid, th, ink)
	}
	if segs[1] {
		cv.line(oy, ox, mid, ox, th, ink)
	}
	if segs[2] {
		cv.line(oy, ox+wid, mid, ox+wid, th, ink)
	}
	if segs[3] {
		cv.line(mid, ox, mid, ox+wid, th, ink)
	}
	if segs[4] {
		cv.line(mid, ox, oy+hgt, ox, th, ink)
	}
	if segs[5] {
		cv.line(mid, ox+wid, oy+hgt, ox+wid, th, ink)
	}
	if segs[6] {
		cv.line(oy+hgt, ox, oy+hgt, ox+wid, th, ink)
	}
	cv.addNoise(rng, 0.08)
	return Sample{X: cv.tensor(), Label: label}
}

// Objects10 is the CIFAR-10 stand-in: 32x32 RGB images where each class
// pairs a distinctive shape with a base hue and texture frequency.
type Objects10 struct {
	Seed             int64
	TrainLen, ValLen int
}

// NewObjects10 returns the default objects dataset.
func NewObjects10() *Objects10 { return &Objects10{Seed: 2002, TrainLen: 4000, ValLen: 800} }

// Name implements Dataset.
func (d *Objects10) Name() string { return "objects10" }

// InputShape implements Dataset.
func (d *Objects10) InputShape() []int { return []int{32, 32, 3} }

// NumClasses implements Dataset.
func (d *Objects10) NumClasses() int { return 10 }

// Len implements Dataset.
func (d *Objects10) Len(split Split) int {
	if split == Train {
		return d.TrainLen
	}
	return d.ValLen
}

// Sample implements Dataset.
func (d *Objects10) Sample(split Split, i int) Sample {
	rng := sampleRNG(d.Seed, split, i)
	label := i % 10
	cv := newCanvas(32, 32, 3)
	// Class hue from a fixed palette, shape from label%5, texture from label/5.
	hue := float64(label) / 10 * 2 * math.Pi
	col := []float32{
		float32(0.5 + 0.45*math.Cos(hue)),
		float32(0.5 + 0.45*math.Cos(hue+2.1)),
		float32(0.5 + 0.45*math.Cos(hue+4.2)),
	}
	bg := []float32{float32(0.15 + rng.Float64()*0.1), float32(0.15 + rng.Float64()*0.1), float32(0.2 + rng.Float64()*0.1)}
	cv.fill(bg)
	cy, cx := 12+rng.Intn(8), 12+rng.Intn(8)
	size := 7 + rng.Intn(4)
	switch label % 5 {
	case 0:
		cv.disk(cy, cx, size, col)
	case 1:
		cv.rect(cy-size, cx-size, cy+size, cx+size, col)
	case 2:
		cv.triangle(cy, cx, size, col)
	case 3:
		cv.line(cy-size, cx-size, cy+size, cx+size, 3, col)
		cv.line(cy-size, cx+size, cy+size, cx-size, 3, col)
	default:
		cv.disk(cy, cx, size, col)
		cv.disk(cy, cx, size/2, bg)
	}
	// Texture band whose frequency is class-dependent.
	freq := 0.4 + 0.25*float64(label/5)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			base := (y*32 + x) * 3
			cv.px[base] += float32(0.08 * math.Sin(freq*float64(x)))
			cv.px[base+1] += float32(0.08 * math.Sin(freq*float64(y)))
		}
	}
	cv.addNoise(rng, 0.06)
	return Sample{X: cv.tensor(), Label: label}
}

// Signs is the GTSRB stand-in: 32x32 RGB traffic-sign-like images; each
// class is a (shape, rim color, glyph) combination.
type Signs struct {
	Seed             int64
	TrainLen, ValLen int
}

// NewSigns returns the default signs dataset.
func NewSigns() *Signs { return &Signs{Seed: 3003, TrainLen: 3200, ValLen: 640} }

// Name implements Dataset.
func (d *Signs) Name() string { return "signs" }

// InputShape implements Dataset.
func (d *Signs) InputShape() []int { return []int{32, 32, 3} }

// NumClasses implements Dataset.
func (d *Signs) NumClasses() int { return 8 }

// Len implements Dataset.
func (d *Signs) Len(split Split) int {
	if split == Train {
		return d.TrainLen
	}
	return d.ValLen
}

// Sample implements Dataset.
func (d *Signs) Sample(split Split, i int) Sample {
	rng := sampleRNG(d.Seed, split, i)
	label := i % 8
	cv := newCanvas(32, 32, 3)
	// Road-scene-ish background.
	cv.fill([]float32{0.35, 0.45, 0.55})
	cv.rect(20, 0, 31, 31, []float32{0.3, 0.3, 0.3})
	red := []float32{0.85, 0.1, 0.1}
	blue := []float32{0.1, 0.2, 0.85}
	white := []float32{0.92, 0.92, 0.92}
	dark := []float32{0.1, 0.1, 0.1}
	rim := red
	if label >= 4 {
		rim = blue
	}
	cy, cx := 13+rng.Intn(5), 13+rng.Intn(5)
	switch label % 4 {
	case 0: // circle sign
		cv.disk(cy, cx, 10, rim)
		cv.disk(cy, cx, 7, white)
	case 1: // triangle sign
		cv.triangle(cy, cx, 10, rim)
		cv.triangle(cy+2, cx, 6, white)
	case 2: // octagon-ish (disk + square)
		cv.disk(cy, cx, 10, rim)
		cv.rect(cy-7, cx-7, cy+7, cx+7, rim)
		cv.disk(cy, cx, 6, white)
	default: // square sign
		cv.rect(cy-9, cx-9, cy+9, cx+9, rim)
		cv.rect(cy-6, cx-6, cy+6, cx+6, white)
	}
	// Class glyph: vertical or horizontal bar.
	if label%2 == 0 {
		cv.rect(cy-4, cx-1, cy+4, cx+1, dark)
	} else {
		cv.rect(cy-1, cx-4, cy+1, cx+4, dark)
	}
	cv.addNoise(rng, 0.05)
	return Sample{X: cv.tensor(), Label: label}
}

// ImNet is the ImageNet stand-in: 64x64 RGB parametric textures with 20
// classes; each class has characteristic sinusoid orientations/frequencies
// plus a class-positioned blob, giving deep models hierarchical structure
// to learn.
type ImNet struct {
	Seed             int64
	TrainLen, ValLen int
}

// NewImNet returns the default imagenet-like dataset.
func NewImNet() *ImNet { return &ImNet{Seed: 4004, TrainLen: 4000, ValLen: 800} }

// Name implements Dataset.
func (d *ImNet) Name() string { return "imnet" }

// InputShape implements Dataset.
func (d *ImNet) InputShape() []int { return []int{64, 64, 3} }

// NumClasses implements Dataset.
func (d *ImNet) NumClasses() int { return 20 }

// Len implements Dataset.
func (d *ImNet) Len(split Split) int {
	if split == Train {
		return d.TrainLen
	}
	return d.ValLen
}

// Sample implements Dataset. The class signal is deliberately strong and
// redundant (global color cast + oriented texture + positioned blob) so
// that the deep scaled-down models reach the paper-like 60-85% top-1
// range with seconds of training.
func (d *ImNet) Sample(split Split, i int) Sample {
	rng := sampleRNG(d.Seed, split, i)
	label := i % 20
	cv := newCanvas(64, 64, 3)
	// Global class color cast: 20 well-separated points on the hue circle.
	hue := float64(label) / 20 * 2 * math.Pi
	castR := 0.45 + 0.3*math.Cos(hue)
	castG := 0.45 + 0.3*math.Cos(hue+2.094)
	castB := 0.45 + 0.3*math.Cos(hue+4.189)
	theta := float64(label%10) * math.Pi / 10
	freq := 0.35 + 0.15*float64(label/10)
	phase := rng.Float64() * 2 * math.Pi
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			u := float64(x)*math.Cos(theta) + float64(y)*math.Sin(theta)
			wave := 0.22 * math.Sin(freq*u+phase)
			base := (y*64 + x) * 3
			cv.px[base] = float32(castR + wave)
			cv.px[base+1] = float32(castG + wave*0.7)
			cv.px[base+2] = float32(castB - wave*0.5)
		}
	}
	// Class blob: position and color keyed to label, large enough to
	// survive five rounds of pooling.
	by := 16 + (label*7)%32
	bx := 16 + (label*13)%32
	col := []float32{
		float32(0.5 + 0.5*math.Sin(float64(label))),
		float32(0.5 + 0.5*math.Sin(float64(label)+2)),
		float32(0.5 + 0.5*math.Sin(float64(label)+4)),
	}
	cv.disk(by+rng.Intn(5)-2, bx+rng.Intn(5)-2, 9+label%3, col)
	cv.addNoise(rng, 0.05)
	return Sample{X: cv.tensor(), Label: label}
}
