// Package data provides deterministic, procedurally generated datasets
// that stand in for the five datasets of the Ranger paper (MNIST,
// CIFAR-10, GTSRB, ImageNet, and the SullyChen real-world driving set).
// The real datasets cannot be shipped; what the paper's experiments need
// from them is (a) a distribution a model can learn well, (b) realistic
// activation-value ranges for bound profiling, and (c) disjoint
// training/validation splits — all of which these generators provide.
// Every sample is a pure function of (dataset seed, split, index), so all
// experiments are reproducible.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"ranger/internal/tensor"
)

// Split selects the training or validation partition. The paper derives
// Ranger's restriction bounds from (a sample of) the training split and
// evaluates accuracy on the validation split (§V-B RQ2).
type Split int

// Dataset splits.
const (
	Train Split = iota + 1
	Val
)

func (s Split) String() string {
	switch s {
	case Train:
		return "train"
	case Val:
		return "val"
	default:
		return fmt.Sprintf("Split(%d)", int(s))
	}
}

// Sample is a single input with its supervision signal: Label for
// classification tasks, Target for regression (steering angle).
type Sample struct {
	X      *tensor.Tensor // shape (1, H, W, C)
	Label  int
	Target float32
}

// Dataset generates samples deterministically by index.
type Dataset interface {
	// Name identifies the dataset in reports.
	Name() string
	// InputShape returns (H, W, C).
	InputShape() []int
	// NumClasses returns the label arity, or 0 for regression datasets.
	NumClasses() int
	// Len returns the number of samples in a split.
	Len(split Split) int
	// Sample generates the i'th sample of a split.
	Sample(split Split, i int) Sample
}

// sampleRNG derives the per-sample random stream. Indices in different
// splits never collide because the split is mixed into the seed.
func sampleRNG(seed int64, split Split, i int) *rand.Rand {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(split)*0xBF58476D1CE4E5B9 + uint64(i)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	return rand.New(rand.NewSource(int64(h & 0x7FFFFFFFFFFFFFFF)))
}

// Batch assembles samples ds[indices] into a single (N,H,W,C) tensor plus
// per-sample labels and targets.
func Batch(ds Dataset, split Split, indices []int) (*tensor.Tensor, []int, []float32) {
	shape := ds.InputShape()
	n := len(indices)
	out := tensor.New(n, shape[0], shape[1], shape[2])
	labels := make([]int, n)
	targets := make([]float32, n)
	stride := shape[0] * shape[1] * shape[2]
	for bi, idx := range indices {
		s := ds.Sample(split, idx)
		copy(out.Data()[bi*stride:(bi+1)*stride], s.X.Data())
		labels[bi] = s.Label
		targets[bi] = s.Target
	}
	return out, labels, targets
}

// OneHot encodes labels as an (N, classes) tensor.
func OneHot(labels []int, classes int) *tensor.Tensor {
	out := tensor.New(len(labels), classes)
	for i, l := range labels {
		if l >= 0 && l < classes {
			out.Set(1, i, l)
		}
	}
	return out
}

// TargetTensor packs regression targets as an (N, 1) tensor.
func TargetTensor(targets []float32) *tensor.Tensor {
	out := tensor.New(len(targets), 1)
	copy(out.Data(), targets)
	return out
}

// canvas is a small HWC float32 image painter shared by the generators.
type canvas struct {
	h, w, c int
	px      []float32
}

func newCanvas(h, w, c int) *canvas {
	return &canvas{h: h, w: w, c: c, px: make([]float32, h*w*c)}
}

func (cv *canvas) set(y, x int, col []float32) {
	if y < 0 || y >= cv.h || x < 0 || x >= cv.w {
		return
	}
	base := (y*cv.w + x) * cv.c
	for i := 0; i < cv.c; i++ {
		cv.px[base+i] = col[i%len(col)]
	}
}

func (cv *canvas) fill(col []float32) {
	for y := 0; y < cv.h; y++ {
		for x := 0; x < cv.w; x++ {
			cv.set(y, x, col)
		}
	}
}

func (cv *canvas) rect(y0, x0, y1, x1 int, col []float32) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			cv.set(y, x, col)
		}
	}
}

func (cv *canvas) disk(cy, cx, r int, col []float32) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dy, dx := y-cy, x-cx
			if dy*dy+dx*dx <= r*r {
				cv.set(y, x, col)
			}
		}
	}
}

func (cv *canvas) triangle(cy, cx, r int, col []float32) {
	for y := 0; y <= 2*r; y++ {
		half := int(float64(y) * 0.6)
		for x := cx - half; x <= cx+half; x++ {
			cv.set(cy-r+y, x, col)
		}
	}
}

// line draws a thick Bresenham-ish line.
func (cv *canvas) line(y0, x0, y1, x1, thick int, col []float32) {
	steps := int(math.Max(math.Abs(float64(y1-y0)), math.Abs(float64(x1-x0)))) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		y := int(math.Round(float64(y0) + t*float64(y1-y0)))
		x := int(math.Round(float64(x0) + t*float64(x1-x0)))
		for dy := -thick / 2; dy <= thick/2; dy++ {
			for dx := -thick / 2; dx <= thick/2; dx++ {
				cv.set(y+dy, x+dx, col)
			}
		}
	}
}

// addNoise perturbs every channel value with N(0, std).
func (cv *canvas) addNoise(rng *rand.Rand, std float64) {
	for i := range cv.px {
		cv.px[i] += float32(rng.NormFloat64() * std)
	}
}

// tensor converts the canvas into a (1,H,W,C) tensor.
func (cv *canvas) tensor() *tensor.Tensor {
	t := tensor.New(1, cv.h, cv.w, cv.c)
	copy(t.Data(), cv.px)
	return t
}
