package data

import (
	"math"
)

// Driving is the stand-in for the real-world driving dataset used by the
// Nvidia Dave and Comma.ai steering models. Each sample renders a 66x200
// RGB road scene with a given curvature; the supervision target is the
// steering angle that follows the curve. Angles span a wide range
// (roughly ±160°), matching the paper's Fig. 1 example where a fault
// corrupts a 156.58° prediction, and the SDC thresholds of 15/30/60/120°.
type Driving struct {
	Seed             int64
	TrainLen, ValLen int
	// Radians selects the supervision unit: the original Dave model is
	// trained on radians (its 2·atan head emits (−π, π)); the Comma model
	// and the paper's retrained "Dave in degrees" variant use degrees.
	Radians bool
}

// NewDriving returns the default degree-labelled driving dataset.
func NewDriving() *Driving { return &Driving{Seed: 5005, TrainLen: 3000, ValLen: 600} }

// NewDrivingRadians returns the radian-labelled variant for the original
// Dave model.
func NewDrivingRadians() *Driving {
	d := NewDriving()
	d.Seed = 5006
	d.Radians = true
	return d
}

// Name implements Dataset.
func (d *Driving) Name() string {
	if d.Radians {
		return "driving-rad"
	}
	return "driving-deg"
}

// InputShape implements Dataset.
func (d *Driving) InputShape() []int { return []int{66, 200, 3} }

// NumClasses implements Dataset; driving is a regression task.
func (d *Driving) NumClasses() int { return 0 }

// Len implements Dataset.
func (d *Driving) Len(split Split) int {
	if split == Train {
		return d.TrainLen
	}
	return d.ValLen
}

// MaxAngleDeg is the magnitude of the largest steering angle generated.
const MaxAngleDeg = 160.0

// Sample implements Dataset. The scene is a road whose centerline bends
// with curvature proportional to the steering target; lane markings and a
// horizon give the convnet localizable features.
func (d *Driving) Sample(split Split, i int) Sample {
	rng := sampleRNG(d.Seed, split, i)
	// Steering angle in degrees, biased toward small angles like real
	// driving but covering the full range.
	u := rng.Float64()*2 - 1 // (-1, 1)
	angleDeg := u * u * u * MaxAngleDeg
	if rng.Float64() < 0.15 { // occasional sharp turns
		angleDeg = (rng.Float64()*2 - 1) * MaxAngleDeg
	}

	const h, w = 66, 200
	cv := newCanvas(h, w, 3)
	// Sky and ground.
	horizon := 20 + rng.Intn(6)
	cv.rect(0, 0, horizon-1, w-1, []float32{0.5, 0.7, 0.9})
	cv.rect(horizon, 0, h-1, w-1, []float32{0.25, 0.5, 0.2})

	// Road: for each scanline below the horizon, the road center shifts
	// with the curvature; width grows toward the viewer (perspective).
	curv := angleDeg / MaxAngleDeg // (-1, 1)
	roadCol := []float32{0.35, 0.35, 0.38}
	laneCol := []float32{0.95, 0.95, 0.85}
	edgeCol := []float32{0.9, 0.9, 0.9}
	for y := horizon; y < h; y++ {
		depth := float64(y-horizon) / float64(h-horizon) // 0 at horizon, 1 near
		center := float64(w)/2 + curv*(1-depth)*(1-depth)*float64(w)*0.45
		width := 8 + depth*70
		x0, x1 := int(center-width), int(center+width)
		cv.rect(y, x0, y, x1, roadCol)
		cv.set(y, x0, edgeCol)
		cv.set(y, x1, edgeCol)
		if (y/4)%2 == 0 { // dashed center lane
			cv.set(y, int(center), laneCol)
			cv.set(y, int(center)+1, laneCol)
		}
	}
	cv.addNoise(rng, 0.04)

	target := float32(angleDeg)
	if d.Radians {
		target = float32(angleDeg * math.Pi / 180)
	}
	return Sample{X: cv.tensor(), Target: target}
}

// DegreesToRadians converts a steering angle.
func DegreesToRadians(deg float64) float64 { return deg * math.Pi / 180 }

// RadiansToDegrees converts a steering angle.
func RadiansToDegrees(rad float64) float64 { return rad * 180 / math.Pi }
