#!/usr/bin/env bash
# Smoke for the adaptive campaign engine's efficiency claim: in the
# bench trajectory (BENCH_adaptive.json), every adaptive run must have
# reached the per-stratum Wilson CI target with at least 3x fewer
# trials than uniform sampling needed under the same stopping rule, and
# at least one adaptive run must actually have converged (hit the
# target, not the budget).
#
# Usage: adaptive_smoke.sh [BENCH_adaptive.json]
# Requires jq.
set -euo pipefail

FILE=${1:-BENCH_adaptive.json}

fail() {
  echo "ADAPTIVE SMOKE FAIL: $*" >&2
  exit 1
}

[ -f "$FILE" ] || fail "$FILE missing (run: go run ./cmd/rangerbench -exp adaptive -json $FILE)"

rows=$(jq '.adaptive.rows | length' "$FILE")
[ "$rows" -ge 3 ] || fail "expected >=3 rows, got $rows"

jq -e '[.adaptive.rows[] | select(.converged)] | length > 0' "$FILE" >/dev/null \
  || fail "no adaptive run converged within its budget"

min=$(jq '[.adaptive.rows[].savings] | min' "$FILE")
jq -e '[.adaptive.rows[].savings] | min >= 3' "$FILE" >/dev/null \
  || fail "adaptive savings fell below 3x (min ${min}x)"

echo "ADAPTIVE SMOKE OK: $rows rows, min savings ${min}x"
