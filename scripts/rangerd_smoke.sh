#!/usr/bin/env bash
# End-to-end smoke for rangerd, exercising the durability contract the
# service exists for:
#
#   1. serve: start the daemon, submit a tiny campaign, stream it to
#      completion, and verify its hash chain offline.
#   2. crash: submit a longer campaign, kill -9 the daemon once progress
#      has persisted, restart over the same store, and require the job to
#      complete with a verifiable chain.
#   3. persistent: submit a persistent weight-surface job (sequences of
#      inferences over a stuck weight fault), kill -9 mid-run, restart,
#      and require it to resume to a completed PersistentOutcome.
#   4. verify: `rangerd verify` re-validates every chain with no daemon.
#
# Requires curl and jq. Respects $RANGERD (binary path, default builds
# nothing — pass it) and $PORT.
set -euo pipefail

BIN=${RANGERD:?set RANGERD to the rangerd binary path}
PORT=${PORT:-7877}
BASE="http://127.0.0.1:$PORT"
DATA=$(mktemp -d)
LOG=$(mktemp)
PID=""

cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DATA" "$LOG"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$LOG" >&2
  exit 1
}

start_daemon() {
  "$BIN" serve -addr "127.0.0.1:$PORT" -data "$DATA" -jobs 1 -block 32 >>"$LOG" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
      return
    fi
    sleep 0.1
  done
  fail "daemon did not become healthy"
}

submit() { # submit <spec-json> -> job id
  curl -fsS -X POST -d "$1" "$BASE/v1/jobs" | jq -re .id
}

job_field() { # job_field <id> <jq-expr>
  curl -fsS "$BASE/v1/jobs/$1" | jq -re "$2"
}

wait_state() { # wait_state <id> <state> <tries>
  local id=$1 want=$2 tries=$3 state
  for _ in $(seq 1 "$tries"); do
    state=$(job_field "$id" .status.state)
    if [ "$state" = "$want" ]; then
      return
    fi
    case "$state" in failed | cancelled) fail "job $id reached $state: $(job_field "$id" '.status.error // empty')" ;; esac
    sleep 0.2
  done
  fail "job $id stuck in $state (wanted $want)"
}

echo "== serve: tiny campaign to completion"
start_daemon
ID1=$(submit '{"model":"lenet","trials":24,"inputs":2,"seed":11,"untrained":true,"block_trials":10}')
wait_state "$ID1" completed 300
TRIALS=$(job_field "$ID1" .status.outcome.trials)
[ "$TRIALS" = 48 ] || fail "job $ID1 completed with $TRIALS trials, want 48"
HASH1=$(job_field "$ID1" .status.last_hash)

echo "== stream: SSE endpoint reports the terminal status"
curl -fsS --max-time 10 "$BASE/v1/jobs/$ID1/stream" | grep -q '"state":"completed"' ||
  fail "stream of completed job carried no terminal status"

echo "== crash: kill -9 mid-campaign, restart, resume"
ID2=$(submit '{"model":"lenet","trials":600,"inputs":2,"seed":12,"untrained":true,"block_trials":16}')
for _ in $(seq 1 300); do
  FRONTIER=$(job_field "$ID2" .status.frontier)
  [ "$FRONTIER" -ge 32 ] && break
  sleep 0.1
done
[ "$FRONTIER" -ge 32 ] || fail "job $ID2 persisted no progress before the kill"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

start_daemon
wait_state "$ID2" completed 600
TRIALS=$(job_field "$ID2" .status.outcome.trials)
[ "$TRIALS" = 1200 ] || fail "resumed job $ID2 completed with $TRIALS trials, want 1200"

echo "== persistent: weight-surface job, kill -9 resume"
ID3=$(submit '{"model":"lenet","trials":96,"inputs":2,"seed":13,"untrained":true,"surface":"weight","sequence_len":4,"repair":true,"block_trials":8}')
for _ in $(seq 1 300); do
  FRONTIER=$(job_field "$ID3" .status.frontier)
  [ "$FRONTIER" -ge 8 ] && break
  sleep 0.1
done
[ "$FRONTIER" -ge 8 ] || fail "persistent job $ID3 persisted no progress before the kill"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

start_daemon
wait_state "$ID3" completed 600
SEQS=$(job_field "$ID3" .status.persistent.sequences)
[ "$SEQS" = 96 ] || fail "persistent job $ID3 completed with $SEQS sequences, want 96"
job_field "$ID3" '.status.outcome == null' >/dev/null ||
  fail "persistent job $ID3 recorded a transient outcome"
kill "$PID" 2>/dev/null
wait "$PID" 2>/dev/null || true
PID=""

echo "== verify: offline re-validation of every chain"
"$BIN" verify -data "$DATA" || fail "rangerd verify rejected the store"

echo "== verify: tampering is detected"
CHAIN="$DATA/$ID1/chain.jsonl"
cp "$CHAIN" "$CHAIN.orig"
# Edit one trial verdict inside the first block: the block seal must
# catch it.
sed -i '1s/"trial":1/"trial":19/' "$CHAIN"
cmp -s "$CHAIN" "$CHAIN.orig" && fail "tamper edit did not change the chain"
if "$BIN" verify -data "$DATA" "$ID1" >/dev/null 2>&1; then
  fail "rangerd verify accepted a tampered chain"
fi
mv "$CHAIN.orig" "$CHAIN"
"$BIN" verify -data "$DATA" "$ID1" >/dev/null || fail "restored chain failed verification"

echo "SMOKE OK: submit, stream, kill -9 resume ($HASH1 ...), persistent-surface resume, offline verify, tamper detection"
